"""Pinned regression reproducers for the bugs the soak flushed out.

Each JSON file under ``reproducers/`` is a shrunk (or hand-minimized)
scenario that violated an invariant before its fix landed:

* ``resources-dead-waiters.json`` — ``Semaphore.release``/``Store.put``
  handing units/items to killed waiters (services-conservation).
* ``loadgen-crash-removal.json`` — ``ScheduledLoad`` removing its
  synthetic tasks from a host that crashed and re-registered in
  between (unhandled-error).
* ``condition-late-failure.json`` — a second dying MPI rank's failure
  escaping an already-failed ``AllOf`` undefused and aborting the run
  (unhandled-error).
* ``swap-stop-pending-period.json`` — ``SwapRescheduler.stop()``
  leaving a pending-timeout loop that issued one more swap decision
  after the stop (swap-hygiene).

All of them must now replay to zero violations and full quiescence —
forever.  If one regresses, replay it interactively with
``repro soak replay tests/soak/reproducers/<name>.json``.
"""

import glob
import os

import pytest

from repro.soak import load_reproducer, run_with_checks

REPRODUCER_DIR = os.path.join(os.path.dirname(__file__), "reproducers")
REPRODUCERS = sorted(glob.glob(os.path.join(REPRODUCER_DIR, "*.json")))


def test_reproducer_set_is_complete():
    names = {os.path.basename(p) for p in REPRODUCERS}
    assert {"resources-dead-waiters.json", "loadgen-crash-removal.json",
            "condition-late-failure.json",
            "swap-stop-pending-period.json"} <= names


@pytest.mark.parametrize(
    "path", REPRODUCERS, ids=[os.path.basename(p) for p in REPRODUCERS])
def test_reproducer_replays_clean(path):
    spec = load_reproducer(path)
    result = run_with_checks(spec)
    assert result["violations"] == [], result["violations"]
    assert result["quiesced"]
