"""Scenario sampling and serialization determinism."""

import json

import pytest

from repro.soak import FIG3_HOSTS, SUBMISSION_HOST, ScenarioSpec, sample_scenario


class TestSampling:
    def test_same_seed_index_is_identical(self):
        a = sample_scenario(7, 3)
        b = sample_scenario(7, 3)
        assert a == b
        assert a.to_json() == b.to_json()

    def test_index_independent_of_sweep_size(self):
        # scenario k must not depend on how many scenarios the sweep
        # draws before or after it
        alone = sample_scenario(7, 5)
        in_sweep = [sample_scenario(7, i) for i in range(8)][5]
        assert alone == in_sweep

    def test_different_seeds_differ(self):
        assert sample_scenario(0, 0) != sample_scenario(1, 0)

    def test_different_indices_differ(self):
        assert sample_scenario(7, 0) != sample_scenario(7, 1)

    def test_sampled_elements_are_sane(self):
        for index in range(30):
            spec = sample_scenario(7, index)
            assert spec.duration > 0
            for fault in spec.faults:
                assert fault["host"] in FIG3_HOSTS
                assert fault["host"] != SUBMISSION_HOST
                assert fault["recover_at"] > fault["at"]
            for burst in spec.bursts:
                assert burst["until"] > burst["at"]

    def test_check_flags_follow_index(self):
        assert sample_scenario(7, 0).engine_check
        assert sample_scenario(7, 1).engine_check is False
        assert sample_scenario(7, 0).trace_check
        assert sample_scenario(7, 5).trace_check


class TestSerialization:
    def test_json_round_trip_byte_identical(self):
        spec = sample_scenario(7, 2)
        text = spec.to_json()
        assert ScenarioSpec.from_json(text).to_json() == text

    def test_round_trip_preserves_equality(self):
        spec = sample_scenario(7, 4)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        data = sample_scenario(0, 0).to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict(data)

    def test_unsupported_schema_rejected(self):
        data = sample_scenario(0, 0).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema"):
            ScenarioSpec.from_dict(data)

    def test_json_is_sorted(self):
        obj = json.loads(sample_scenario(0, 0).to_json())
        assert list(obj) == sorted(obj)


class TestValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ScenarioSpec(index=0, seed=0, duration=-1.0)

    def test_unknown_job_kind_rejected(self):
        with pytest.raises(ValueError, match="job kind"):
            ScenarioSpec(index=0, seed=0, duration=10.0,
                         jobs=[{"kind": "nope", "submit_time": 0.0}])

    def test_unknown_fault_host_rejected(self):
        with pytest.raises(ValueError, match="fault host"):
            ScenarioSpec(index=0, seed=0, duration=10.0,
                         faults=[{"host": "mars.n0", "at": 1.0,
                                  "recover_at": 2.0}])

    def test_fault_recovery_must_follow_crash(self):
        with pytest.raises(ValueError, match="recovery"):
            ScenarioSpec(index=0, seed=0, duration=10.0,
                         faults=[{"host": FIG3_HOSTS[1], "at": 5.0,
                                  "recover_at": 5.0}])

    def test_unknown_swap_policy_rejected(self):
        with pytest.raises(ValueError, match="swap policy"):
            ScenarioSpec(index=0, seed=0, duration=10.0,
                         swap={"policy": "chaotic"})
