"""The open-loop Poisson stream generator."""

import pytest

from repro.metasched.arrivals import DEFAULT_MIX, generate_stream
from repro.metasched.jobs import JOB_KINDS
from repro.sim.rng import RngRegistry


class TestGenerateStream:
    def test_same_seed_same_stream(self):
        a = generate_stream(4, 0.01, 3600.0, RngRegistry(42))
        b = generate_stream(4, 0.01, 3600.0, RngRegistry(42))
        assert [(s.name, s.submit_time, s.kind, s.size, s.n_hosts)
                for s in a] == \
               [(s.name, s.submit_time, s.kind, s.size, s.n_hosts)
                for s in b]

    def test_different_seeds_differ(self):
        a = generate_stream(4, 0.01, 3600.0, RngRegistry(0))
        b = generate_stream(4, 0.01, 3600.0, RngRegistry(1))
        assert [s.submit_time for s in a] != [s.submit_time for s in b]

    def test_ordered_and_within_duration(self):
        specs = generate_stream(4, 0.02, 1800.0, RngRegistry(0))
        times = [s.submit_time for s in specs]
        assert times == sorted(times)
        assert all(0.0 < t <= 1800.0 for t in times)

    def test_rate_roughly_matches(self):
        specs = generate_stream(8, 0.05, 20000.0, RngRegistry(3))
        # Poisson with mean 1000 arrivals; a factor-of-two band is
        # astronomically safe and still catches rate bugs.
        assert 500 < len(specs) < 2000

    def test_max_jobs_caps_stream(self):
        specs = generate_stream(4, 0.05, 1e6, RngRegistry(0), max_jobs=37)
        assert len(specs) == 37

    def test_specs_are_valid(self):
        for s in generate_stream(4, 0.02, 5000.0, RngRegistry(5)):
            assert s.kind in JOB_KINDS
            assert s.n_hosts >= 1
            assert s.size > 0
            assert s.name.startswith(s.user)

    def test_users_stay_in_range(self):
        specs = generate_stream(3, 0.05, 5000.0, RngRegistry(9))
        users = {s.user for s in specs}
        assert users <= {"u0", "u1", "u2"}
        assert len(users) > 1

    def test_bad_arguments_rejected(self):
        rng = RngRegistry(0)
        with pytest.raises(ValueError):
            generate_stream(0, 0.01, 100.0, rng)
        with pytest.raises(ValueError):
            generate_stream(1, 0.0, 100.0, rng)
        with pytest.raises(ValueError):
            generate_stream(1, 0.01, 0.0, rng)
        with pytest.raises(ValueError):
            generate_stream(1, 0.01, 100.0, rng, mix=())
        with pytest.raises(ValueError):
            generate_stream(1, 0.01, 100.0, rng,
                            mix=(("warp", 1.0, (1.0, 2.0), (1, 2)),))

    def test_default_mix_covers_all_kinds(self):
        assert sorted(entry[0] for entry in DEFAULT_MIX) == \
            sorted(JOB_KINDS)
