"""Reservation calendar invariants (DESIGN.md §9.3, §9.6)."""

import math

import pytest

from repro.metasched.reservations import (
    HostCalendar,
    Reservation,
    ReservationBook,
    ReservationConflict,
    _dedup_times,
)


class TestReservation:
    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Reservation("j", "h", 10.0, 10.0)

    def test_overlap_is_half_open(self):
        resv = Reservation("j", "h", 10.0, 20.0)
        assert resv.overlaps(15.0, 25.0)
        assert not resv.overlaps(20.0, 30.0)  # touching is not overlap
        assert not resv.overlaps(0.0, 10.0)


class TestHostCalendar:
    def test_reserve_refuses_overlap(self):
        cal = HostCalendar("h")
        cal.reserve("a", 0.0, 100.0)
        with pytest.raises(ReservationConflict):
            cal.reserve("b", 50.0, 150.0)
        cal.reserve("b", 100.0, 150.0)  # abutting is fine

    def test_claim_backdates_start(self):
        cal = HostCalendar("h")
        resv = cal.reserve("a", 50.0, 100.0)
        cal.claim(resv, 40.0)
        assert resv.start == 40.0
        assert resv.state == "claimed"

    def test_claim_requires_reserved_state(self):
        cal = HostCalendar("h")
        resv = cal.reserve("a", 0.0, 10.0)
        cal.claim(resv, 0.0)
        with pytest.raises(ValueError):
            cal.claim(resv, 1.0)

    def test_release_truncates_claims_into_history(self):
        cal = HostCalendar("h")
        resv = cal.reserve("a", 0.0, 100.0)
        cal.claim(resv, 0.0)
        cal.release(resv, 60.0)
        assert cal.claim_history == [("a", 0.0, 60.0)]
        assert cal.active() == []

    def test_release_of_unstarted_reservation_leaves_no_history(self):
        cal = HostCalendar("h")
        resv = cal.reserve("a", 50.0, 100.0)
        cal.release(resv, 10.0)
        assert cal.claim_history == []

    def test_overdue_claim_blocks_until_grace_horizon(self):
        cal = HostCalendar("h")
        resv = cal.reserve("a", 0.0, 100.0)
        cal.claim(resv, 0.0)
        # The job overran its estimate: at t=200 the claim still blocks,
        # but only until now + grace.
        assert cal.busy_during(200.0, 210.0, now=200.0, grace=30.0)
        assert not cal.busy_during(231.0, 240.0, now=200.0, grace=30.0)
        assert cal.horizon_times(200.0, 30.0) == [230.0]

    def test_audit_catches_manufactured_overlap(self):
        cal = HostCalendar("h")
        cal.claim_history.append(("a", 0.0, 60.0))
        cal.claim_history.append(("b", 50.0, 90.0))
        problems = cal.audit()
        assert len(problems) == 1
        assert "overlap" in problems[0]

    def test_audit_clean_on_abutting_claims(self):
        cal = HostCalendar("h")
        cal.claim_history.append(("a", 0.0, 60.0))
        cal.claim_history.append(("b", 60.0, 90.0))
        assert cal.audit() == []


class TestReservationBook:
    def test_reserve_block_rolls_back_on_conflict(self):
        book = ReservationBook(["h1", "h2", "h3"])
        book.reserve_block("a", ["h2"], 0.0, 100.0)
        with pytest.raises(ReservationConflict):
            book.reserve_block("b", ["h1", "h2"], 50.0, 150.0)
        # the partial h1 booking was rolled back
        assert book.calendar("h1").active() == []

    def test_find_window_immediate_when_free(self):
        book = ReservationBook(["h1", "h2"])
        start, hosts = book.find_window(2, 60.0, 10.0, ["h1", "h2"], 10.0)
        assert start == 10.0
        assert hosts == ["h1", "h2"]

    def test_find_window_waits_for_earliest_gap(self):
        book = ReservationBook(["h1", "h2"])
        book.reserve_block("a", ["h1"], 0.0, 100.0)
        book.reserve_block("b", ["h2"], 0.0, 200.0)
        start, hosts = book.find_window(1, 50.0, 0.0, ["h1", "h2"], 0.0)
        assert (start, hosts) == (100.0, ["h1"])
        start, hosts = book.find_window(2, 50.0, 0.0, ["h1", "h2"], 0.0)
        assert (start, hosts) == (200.0, ["h1", "h2"])

    def test_find_window_fits_backfill_gap(self):
        book = ReservationBook(["h1"])
        book.reserve_block("head", ["h1"], 100.0, 200.0)
        # A 50 s job fits in [0, 100) without touching the reservation...
        start, hosts = book.find_window(1, 50.0, 0.0, ["h1"], 0.0)
        assert (start, hosts) == (0.0, ["h1"])
        # ...but a 150 s job must wait until the reservation ends.
        start, hosts = book.find_window(1, 150.0, 0.0, ["h1"], 0.0)
        assert start == 200.0

    def test_find_window_respects_preference_order(self):
        book = ReservationBook(["h1", "h2"])
        start, hosts = book.find_window(1, 10.0, 0.0, ["h2", "h1"], 0.0)
        assert hosts == ["h2"]

    def test_find_window_impossible_host_count(self):
        book = ReservationBook(["h1"])
        assert book.find_window(2, 10.0, 0.0, ["h1"], 0.0) is None

    def test_unavailable_hosts(self):
        book = ReservationBook(["h1", "h2", "h3"])
        resvs = book.reserve_block("a", ["h1"], 0.0, 100.0)
        book.reserve_block("b", ["h3"], 500.0, 600.0)
        assert book.unavailable_hosts(50.0) == ["h1", "h3"]
        assert book.unavailable_hosts(50.0, 60.0) == ["h1"]
        assert book.unavailable_hosts(100.0, 200.0) == []
        book.claim_block(resvs, 0.0)
        assert book.unavailable_hosts(50.0, 60.0) == ["h1"]
        assert book.unavailable_hosts(math.inf - 1) == []

    def test_audit_aggregates_hosts(self):
        book = ReservationBook(["h1", "h2"])
        book.calendar("h2").claim_history.extend(
            [("a", 0.0, 60.0), ("b", 30.0, 90.0)])
        problems = book.audit()
        assert len(problems) == 1
        assert problems[0].startswith("h2:")


class TestCandidateTimeDedup:
    """Eps-close floats are one candidate start, not several."""

    def test_dedup_collapses_within_eps(self):
        times = [100.0, 100.0 + 5e-10, 0.0, 100.0 - 3e-10, 200.0]
        assert _dedup_times(times) == [0.0, 100.0 - 3e-10, 200.0]

    def test_dedup_keeps_distinct_instants(self):
        assert _dedup_times([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_find_window_merges_eps_close_reservation_ends(self):
        # Two hosts whose reservations end a sub-eps apart: the sweep
        # must treat that as ONE candidate start on both engines.
        book = ReservationBook(["h1", "h2"])
        book.reserve_block("a", ["h1"], 0.0, 100.0)
        book.reserve_block("b", ["h2"], 0.0, 100.0 + 5e-10)
        got = book.find_window(2, 50.0, 0.0, ["h1", "h2"], 0.0)
        want = book.find_window_reference(2, 50.0, 0.0, ["h1", "h2"], 0.0)
        assert got == want
        start, hosts = got
        assert hosts == ["h1", "h2"]
        assert abs(start - 100.0) < 1e-9


class TestUnavailableHostsDefaults:
    """``unavailable_hosts(start)`` with no ``end`` means "from start
    onwards, forever" — the rescheduler's conservative question."""

    def test_default_end_is_open_ended(self):
        book = ReservationBook(["h1", "h2"])
        book.reserve_block("far", ["h2"], 1e9, 1e9 + 60.0)
        # with an explicit horizon the far-future booking is invisible...
        assert book.unavailable_hosts(0.0, 100.0) == []
        # ...with the default end=inf it is not
        assert book.unavailable_hosts(0.0) == ["h2"]

    def test_released_reservations_never_count(self):
        book = ReservationBook(["h1"])
        resvs = book.reserve_block("a", ["h1"], 0.0, 100.0)
        book.release_block(resvs, 10.0)
        assert book.unavailable_hosts(0.0) == []


class TestOverrunHorizons:
    """Overrunning claims and the grace horizon (DESIGN.md §9.3)."""

    def test_horizon_times_mixes_grace_and_real_ends(self):
        cal = HostCalendar("h")
        running = cal.reserve("running", 0.0, 100.0)
        cal.claim(running, 0.0)
        cal.reserve("future", 400.0, 500.0)
        # At t=200 the claim has overrun: its effective end is
        # now + grace, while the untouched booking keeps its real end.
        assert cal.horizon_times(200.0, 30.0) == [230.0, 500.0]
        # Before the estimate elapsed, both ends are the real ones.
        assert cal.horizon_times(50.0, 30.0) == [100.0, 500.0]

    def test_has_overrun_is_per_host(self):
        book = ReservationBook(["h1", "h2"])
        resv = book.calendar("h1").reserve("a", 0.0, 100.0)
        book.calendar("h1").claim(resv, 0.0)
        assert book.calendar("h1").has_overrun(150.0)
        assert not book.calendar("h2").has_overrun(150.0)
        assert book.has_overrun(150.0)
        assert not book.has_overrun(50.0)

    def test_release_clears_overrun(self):
        book = ReservationBook(["h1"])
        cal = book.calendar("h1")
        resv = cal.reserve("a", 0.0, 100.0)
        cal.claim(resv, 0.0)
        assert book.has_overrun(150.0)
        cal.release(resv, 150.0)
        assert not book.has_overrun(150.0)

    def test_free_now_skips_overrunning_host(self):
        book = ReservationBook(["h1", "h2"])
        resv = book.calendar("h1").reserve("a", 0.0, 100.0)
        book.calendar("h1").claim(resv, 0.0)
        # h1's job is still running at t=150; only h2 is free now.
        assert book.free_now(1, 60.0, ["h1", "h2"], 150.0) == ["h2"]
        assert book.free_now(2, 60.0, ["h1", "h2"], 150.0) is None


class TestIncrementalInternals:
    """The §9.6 fast-path bookkeeping the planner relies on."""

    def test_first_live_indexes_past_finished_intervals(self):
        cal = HostCalendar("h")
        cal.reserve("a", 0.0, 10.0)
        cal.reserve("b", 20.0, 30.0)
        cal.reserve("c", 40.0, 50.0)
        assert cal.first_live(5.0) == 0
        assert cal.first_live(15.0) == 1
        assert cal.first_live(35.0) == 2
        assert cal.first_live(60.0) == 3

    def test_book_version_bumps_on_every_mutation(self):
        book = ReservationBook(["h1", "h2"])
        v0 = book.version()
        resvs = book.reserve_block("a", ["h1", "h2"], 0.0, 100.0)
        v1 = book.version()
        assert v1 == v0 + 2  # one bump per calendar insert
        book.claim_block(resvs, 0.0)
        v2 = book.version()
        assert v2 > v1
        book.release_block(resvs, 50.0)
        assert book.version() > v2

    def test_lazily_created_calendar_shares_version_cell(self):
        book = ReservationBook()
        cal = book.calendar("new-host")
        v0 = book.version()
        cal.reserve("a", 0.0, 10.0)
        assert book.version() == v0 + 1

    def test_rolled_back_block_still_advances_version(self):
        # A rollback mutates calendars (insert then release), so the
        # planner must treat it as a world change — version moves.
        book = ReservationBook(["h1", "h2"])
        book.reserve_block("a", ["h2"], 0.0, 100.0)
        v = book.version()
        with pytest.raises(ReservationConflict):
            book.reserve_block("b", ["h1", "h2"], 50.0, 150.0)
        assert book.version() > v
