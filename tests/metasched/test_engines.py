"""Fast-planner vs reference-oracle equivalence (DESIGN.md §9.6).

The delta re-planning engine must be *observationally identical* to
the cancel-all/rebuild-all reference: same job outcomes, same claim
histories, byte-identical same-seed reports.  Only the ``meta_plan_*``
performance counters may differ — and those are excluded from reports.
"""

import random

import pytest

from repro.experiments.metasched_stream import run_metasched
from repro.gis.directory import GridInformationService
from repro.metasched import JobSpec, MetaScheduler, generate_stream
from repro.metasched.jobs import build_workflow
from repro.metasched.reservations import ReservationBook
from repro.metasched.service import ENGINES, JobState
from repro.microgrid.testbed import fig3_testbed
from repro.nws.service import NetworkWeatherService
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def build_service(engine="fast", **kwargs):
    sim = Simulator()
    grid = fig3_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, MetaScheduler(sim, grid, gis, nws, engine=engine, **kwargs)


def serve(engine, specs, **kwargs):
    sim, service = build_service(engine=engine, **kwargs)
    done = service.run_stream(specs)
    sim.run(stop_event=done)
    return sim, service


def spec(name, user="u0", kind="qr", submit=0.0, n_hosts=2, size=4000.0):
    return JobSpec(name=name, user=user, kind=kind, submit_time=submit,
                   n_hosts=n_hosts, size=size)


#: a contended stream: enough arrival pressure that reservations,
#: backfills and deep queues all occur on the 12-host testbed
CONTENDED = dict(users=6, arrival_rate=1 / 40.0, duration=2400.0, seed=2,
                 max_jobs=40)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            build_service(engine="bogus")

    def test_engines_constant(self):
        assert ENGINES == ("fast", "reference")


class TestByteIdenticalReports:
    def test_fig3_stream(self):
        fast = run_metasched(engine="fast", **CONTENDED)
        ref = run_metasched(engine="reference", **CONTENDED)
        assert fast.to_json() == ref.to_json()
        assert fast.conflicts == []

    def test_scale_grid_stream(self):
        kwargs = dict(users=6, arrival_rate=1 / 20.0, duration=1200.0,
                      seed=3, max_jobs=30, n_hosts=16)
        fast = run_metasched(engine="fast", **kwargs)
        ref = run_metasched(engine="reference", **kwargs)
        assert fast.to_json() == ref.to_json()
        assert fast.summary()["completed"] > 0

    def test_report_excludes_engine_counters(self):
        result = run_metasched(engine="fast", users=2,
                               arrival_rate=1 / 200.0, duration=600.0,
                               seed=0, max_jobs=4)
        # full snapshot keeps them; the deterministic report drops them
        assert any(k.startswith("meta_plan_") for k in result.counters)
        assert not any(k.startswith("meta_plan_")
                       for k in result.report()["counters"])
        assert "engine" not in result.report()["params"]


class TestOutcomeEquivalence:
    def test_job_outcomes_and_claim_histories_identical(self):
        specs = generate_stream(5, 1 / 50.0, 2000.0, RngRegistry(4),
                                max_jobs=30)
        _sim_f, fast = serve("fast", specs)
        _sim_r, ref = serve("reference", specs)
        for a, b in zip(fast.states(), ref.states()):
            assert a.spec.name == b.spec.name
            assert a.status == b.status
            assert a.started_at == b.started_at
            assert a.finished_at == b.finished_at
            assert a.hosts == b.hosts
            assert a.backfilled == b.backfilled
        for host in fast.book.hosts():
            assert (fast.book.calendar(host).claim_history
                    == ref.book.calendar(host).claim_history)
        assert fast.audit_conflicts() == []
        assert ref.audit_conflicts() == []

    def test_event_counts_and_wakes_match(self):
        specs = generate_stream(4, 1 / 60.0, 1800.0, RngRegistry(8),
                                max_jobs=20)
        sim_f, _fast = serve("fast", specs)
        sim_r, _ref = serve("reference", specs)
        # shared wake logic: same arms, same kernel agenda, same clock
        assert (sim_f.stats.meta_plan_wakes
                == sim_r.stats.meta_plan_wakes)
        assert (sim_f.stats.events_processed
                == sim_r.stats.events_processed)
        assert sim_f.now == sim_r.now


class TestFastEngineMechanics:
    def test_delta_replan_keeps_and_memoizes(self):
        fast = run_metasched(engine="fast", **CONTENDED)
        counters = fast.counters
        assert counters["meta_plan_rounds"] > 0
        assert counters["meta_plan_kept"] > 0
        assert counters["meta_plan_rebuilt"] > 0
        assert counters["meta_plan_window_probes"] > 0
        assert counters["meta_plan_estimate_memo_hits"] > 0

    def test_reference_engine_never_keeps(self):
        ref = run_metasched(engine="reference", **CONTENDED)
        assert ref.counters["meta_plan_kept"] == 0
        assert ref.counters["meta_plan_estimate_memo_hits"] == 0
        assert ref.counters["meta_plan_rebuilt"] > 0


class TestWakeScheduling:
    """Regression for the stale-``_next_wake`` re-arm bug: the planner
    now tracks armed-but-unfired wake instants, so a wake that has
    fired can never suppress — or force — a later arm decision."""

    def _service_with_queued(self, names):
        sim, service = build_service()
        for i, name in enumerate(names):
            s = spec(name, user=f"u{i}")
            service.jobs[name] = JobState(spec=s,
                                          workflow=build_workflow(s))
            service.queue.push(s)
        return sim, service

    def test_pending_wake_suppresses_duplicate_arm(self):
        sim, service = self._service_with_queued(["r1"])
        service.jobs["r1"].planned = service.book.reserve_block(
            "r1", ["utk.n0"], 200.0, 300.0)
        service._schedule_wake(0.0)
        assert sim.stats.meta_plan_wakes == 1
        assert service._pending_wakes == [200.0]
        # same earliest again: the pending wake already covers it
        service._schedule_wake(0.0)
        assert sim.stats.meta_plan_wakes == 1

    def test_earlier_plan_gets_its_own_wake(self):
        sim, service = self._service_with_queued(["r1", "r2"])
        service.jobs["r1"].planned = service.book.reserve_block(
            "r1", ["utk.n0"], 200.0, 300.0)
        service._schedule_wake(0.0)
        service.jobs["r2"].planned = service.book.reserve_block(
            "r2", ["utk.n1"], 100.0, 300.0)
        service._schedule_wake(0.0)
        assert sim.stats.meta_plan_wakes == 2
        assert service._pending_wakes == [100.0, 200.0]

    def test_fired_wake_does_not_force_rearm(self):
        sim, service = self._service_with_queued(["r1", "r2"])
        service.jobs["r1"].planned = service.book.reserve_block(
            "r1", ["utk.n0"], 200.0, 300.0)
        service._schedule_wake(0.0)
        service.jobs["r2"].planned = service.book.reserve_block(
            "r2", ["utk.n1"], 100.0, 300.0)
        service._schedule_wake(0.0)
        assert sim.stats.meta_plan_wakes == 2
        # isolate the arm/forget mechanics from planning side effects
        service._round = lambda: None
        service._wake(100.0)  # the 100 s wake fires and forgets itself
        assert service._pending_wakes == [200.0]
        # r2's plan was handled; r1's wake at 200 is still pending.
        # The old planner kept the stale fired instant and re-armed
        # unconditionally here; now the pending wake covers earliest.
        service.jobs["r2"].planned = []
        service._schedule_wake(150.0)
        assert sim.stats.meta_plan_wakes == 2  # no third arm

    def test_wakes_fire_rounds_end_to_end(self):
        # Two serialized 12-host jobs: the second starts off a round
        # triggered by completion or wake — either way the stream
        # drains and at least one wake was armed for the reservation.
        sim, service = build_service()
        done = service.run_stream([
            spec("a", user="u0", n_hosts=12, submit=0.0),
            spec("b", user="u1", n_hosts=12, submit=1.0),
        ])
        sim.run(stop_event=done)
        assert [s.status for s in service.states()] == ["completed"] * 2
        assert sim.stats.meta_plan_wakes >= 1
        # no stale past instants linger; anything left is a future wake
        # whose firing the stop event simply preempted
        assert all(w > sim.now - 1e-9 for w in service._pending_wakes)


class TestWindowSearchEquivalence:
    """Property test: the merged-sweep window search must agree with
    the pre-overhaul nested-loop oracle on randomized calendars."""

    def _random_book(self, rng, n_hosts=6, n_resv=25):
        hosts = [f"h{i}" for i in range(n_hosts)]
        book = ReservationBook(hosts)
        for k in range(n_resv):
            host = rng.choice(hosts)
            start = rng.randrange(0, 500) * 1.0
            end = start + rng.randrange(1, 120)
            try:
                resv = book.calendar(host).reserve(f"j{k}", start, end)
            except Exception:
                continue
            roll = rng.random()
            if roll < 0.4:
                book.calendar(host).claim(resv, start)
            elif roll < 0.5:
                book.calendar(host).release(resv, start + 1.0)
        return book, hosts

    def test_matches_reference_on_random_calendars(self):
        for seed in range(12):
            rng = random.Random(seed)
            book, hosts = self._random_book(rng)
            for trial in range(20):
                n = rng.randrange(1, len(hosts) + 1)
                duration = rng.randrange(5, 200) * 1.0
                now = rng.randrange(0, 600) * 1.0
                order = hosts[:]
                rng.shuffle(order)
                got = book.find_window(n, duration, now, order, now, 30.0)
                want = book.find_window_reference(n, duration, now, order,
                                                  now, 30.0)
                assert got == want, (seed, trial, n, duration, now, order)

    def test_free_now_is_the_immediate_probe(self):
        for seed in range(8):
            rng = random.Random(1000 + seed)
            book, hosts = self._random_book(rng)
            for trial in range(20):
                n = rng.randrange(1, len(hosts) + 1)
                duration = rng.randrange(5, 200) * 1.0
                now = rng.randrange(0, 600) * 1.0
                order = hosts[:]
                rng.shuffle(order)
                free = book.free_now(n, duration, order, now, 30.0)
                window = book.find_window_reference(n, duration, now,
                                                    order, now, 30.0)
                if free is not None:
                    assert window == (now, free)
                elif window is not None:
                    assert window[0] > now
