"""Fair-share queue ordering, aging, and accounting."""

import pytest

from repro.metasched.jobs import JobSpec
from repro.metasched.queueing import FairShareQueue


def spec(name, user, submit=0.0, priority=0):
    return JobSpec(name=name, user=user, kind="qr", submit_time=submit,
                   n_hosts=1, size=1000.0, priority=priority)


class TestFairShareQueue:
    def test_cold_start_is_fifo(self):
        q = FairShareQueue()
        q.push(spec("a", "u0"))
        q.push(spec("b", "u1"))
        q.push(spec("c", "u0"))
        assert [s.name for s in q.ordered(0.0)] == ["a", "b", "c"]

    def test_heavy_user_yields_to_light_user(self):
        q = FairShareQueue()
        q.charge("hog", 5000.0)
        q.push(spec("hog-job", "hog"))
        q.push(spec("light-job", "light"))
        assert [s.name for s in q.ordered(0.0)] == ["light-job", "hog-job"]

    def test_aging_overcomes_usage_spread(self):
        q = FairShareQueue(aging_weight=1e-3)
        q.charge("hog", 5000.0)
        q.push(spec("hog-job", "hog", submit=0.0))
        q.push(spec("light-job", "light", submit=1000.0))
        # Fresh at t=1000, the light user still goes... nowhere: the hog
        # job has waited 1000 s, its aging credit 1.0 cancels its full
        # normalized usage, and the FIFO tie-break puts it first again.
        assert [s.name for s in q.ordered(1000.0)] == ["hog-job", "light-job"]
        # Before the credit accrued, the light user outranked it.
        q2 = FairShareQueue(aging_weight=1e-3)
        q2.charge("hog", 5000.0)
        q2.push(spec("hog-job", "hog", submit=0.0))
        q2.push(spec("light-job", "light", submit=0.0))
        assert [s.name for s in q2.ordered(0.0)] == ["light-job", "hog-job"]

    def test_explicit_priority_wins(self):
        q = FairShareQueue()
        q.push(spec("normal", "u0"))
        q.push(spec("urgent", "u1", priority=5))
        assert [s.name for s in q.ordered(0.0)] == ["urgent", "normal"]

    def test_remove_and_membership(self):
        q = FairShareQueue()
        q.push(spec("a", "u0"))
        q.push(spec("b", "u0"))
        assert "a" in q
        assert q.user_queued("u0") == 2
        removed = q.remove("a")
        assert removed.name == "a"
        assert "a" not in q
        assert len(q) == 1
        with pytest.raises(KeyError):
            q.remove("a")

    def test_negative_aging_weight_rejected(self):
        with pytest.raises(ValueError):
            FairShareQueue(aging_weight=-1.0)

    def test_specs_preserves_arrival_order(self):
        q = FairShareQueue()
        q.charge("hog", 5000.0)
        q.push(spec("hog-job", "hog"))
        q.push(spec("light-job", "light"))
        # dispatch order reranks; specs() never does
        assert [s.name for s in q.ordered(0.0)] == ["light-job", "hog-job"]
        assert [s.name for s in q.specs()] == ["hog-job", "light-job"]


class TestOrderMemoization:
    """ordered() is computed once per mutation epoch (DESIGN.md §9.6):
    every queued job ages at the same rate, so the relative ranking is
    invariant in ``now`` until push/remove/charge changes the world."""

    def test_order_is_time_invariant_between_mutations(self):
        q = FairShareQueue()
        q.charge("hog", 5000.0)
        q.push(spec("hog-job", "hog"))
        q.push(spec("light-job", "light"))
        first = [s.name for s in q.ordered(0.0)]
        assert [s.name for s in q.ordered(9999.0)] == first

    def test_returned_list_is_a_copy(self):
        q = FairShareQueue()
        q.push(spec("a", "u0"))
        q.push(spec("b", "u1"))
        order = q.ordered(0.0)
        order.clear()
        assert [s.name for s in q.ordered(0.0)] == ["a", "b"]

    def test_push_invalidates_cache(self):
        q = FairShareQueue()
        q.charge("hog", 5000.0)
        q.push(spec("hog-job", "hog"))
        assert [s.name for s in q.ordered(0.0)] == ["hog-job"]
        q.push(spec("light-job", "light"))
        assert [s.name for s in q.ordered(0.0)] == ["light-job", "hog-job"]

    def test_remove_invalidates_cache(self):
        q = FairShareQueue()
        q.charge("hog", 5000.0)
        q.push(spec("hog-job", "hog"))
        q.push(spec("light-job", "light"))
        assert [s.name for s in q.ordered(0.0)] == ["light-job", "hog-job"]
        q.remove("light-job")
        assert [s.name for s in q.ordered(0.0)] == ["hog-job"]

    def test_charge_invalidates_cache(self):
        q = FairShareQueue()
        q.push(spec("a", "u0"))
        q.push(spec("b", "u1"))
        assert [s.name for s in q.ordered(0.0)] == ["a", "b"]
        # u0 burns cpu-seconds: the next round must re-rank
        q.charge("u0", 5000.0)
        assert [s.name for s in q.ordered(0.0)] == ["b", "a"]
