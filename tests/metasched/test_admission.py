"""Admission control against live GIS/NWS state."""

import pytest

from repro.gis.directory import GridInformationService
from repro.metasched.admission import AdmissionController
from repro.metasched.jobs import JobSpec
from repro.microgrid.testbed import fig3_testbed, heterogeneous_testbed
from repro.nws.service import NetworkWeatherService
from repro.sim.kernel import Simulator


def spec(n_hosts=2, isa=None, user="u0"):
    return JobSpec(name="j0", user=user, kind="qr", submit_time=0.0,
                   n_hosts=n_hosts, size=1000.0, isa=isa)


def build(testbed=fig3_testbed, **kwargs):
    sim = Simulator()
    grid = testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, AdmissionController(gis, nws, **kwargs)


class TestUsableHosts:
    def test_fastest_first_then_name(self):
        _sim, _grid, adm = build()
        hosts = adm.usable_hosts(spec())
        assert len(hosts) == 12
        # UTK PIII-933 nodes outrank UIUC PII-450 nodes.
        assert hosts[:4] == ["utk.n0", "utk.n1", "utk.n2", "utk.n3"]
        assert hosts[4].startswith("uiuc.")

    def test_isa_filter(self):
        _sim, _grid, adm = build(testbed=heterogeneous_testbed)
        ia64 = adm.usable_hosts(spec(isa="ia64"))
        assert ia64 and all(h.startswith("ia64.") for h in ia64)

    def test_dead_host_dropped(self):
        _sim, grid, adm = build()
        grid.clusters["utk"][0].fail()
        hosts = adm.usable_hosts(spec())
        assert grid.clusters["utk"][0].name not in hosts
        assert len(hosts) == 11

    def test_unregistered_host_dropped(self):
        _sim, grid, adm = build()
        adm.gis.unregister("uiuc.n7")
        assert "uiuc.n7" not in adm.usable_hosts(spec())


class TestAdmit:
    def test_admits_reasonable_job(self):
        _sim, _grid, adm = build()
        admitted, reason = adm.admit(spec(), 0, 0)
        assert admitted and reason == ""

    def test_queue_full(self):
        _sim, _grid, adm = build(max_queue=3)
        assert adm.admit(spec(), 3, 0) == (False, "queue-full")
        assert adm.admit(spec(), 2, 0)[0]

    def test_user_quota(self):
        _sim, _grid, adm = build(max_per_user=2)
        assert adm.admit(spec(), 5, 2) == (False, "user-quota")
        assert adm.admit(spec(), 5, 1)[0]

    def test_insufficient_resources(self):
        _sim, _grid, adm = build()
        assert adm.admit(spec(n_hosts=13), 0, 0) == \
            (False, "insufficient-resources")

    def test_overloaded_resources(self):
        sim, grid, adm = build(min_forecast=0.5)
        for host in grid.all_hosts():
            host.add_background_load(nprocs=host.cores * 3)
        sim.run(until=60.0)  # let CPU sensors observe the load
        admitted, reason = adm.admit(spec(n_hosts=12), 0, 0)
        assert (admitted, reason) == (False, "resources-overloaded")

    def test_constructor_validation(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        gis = GridInformationService()
        gis.register_grid(grid)
        nws = NetworkWeatherService(sim, grid,
                                    deploy_network_sensors=False)
        with pytest.raises(ValueError):
            AdmissionController(gis, nws, max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(gis, nws, max_per_user=0)
        with pytest.raises(ValueError):
            AdmissionController(gis, nws, min_forecast=1.5)
