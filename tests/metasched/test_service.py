"""End-to-end tests for the multi-tenant submission service."""

import pytest

from repro.gis.directory import GridInformationService
from repro.metasched import JobSpec, MetaScheduler, generate_stream
from repro.microgrid.testbed import fig3_testbed
from repro.nws.service import NetworkWeatherService
from repro.rescheduling import Rescheduler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.trace import Tracer


def build_service(tracer=None, **kwargs):
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
    grid = fig3_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, MetaScheduler(sim, grid, gis, nws, **kwargs)


def spec(name, user="u0", kind="qr", submit=0.0, n_hosts=2, size=4000.0,
         **kwargs):
    return JobSpec(name=name, user=user, kind=kind, submit_time=submit,
                   n_hosts=n_hosts, size=size, **kwargs)


def run_stream(sim, service, specs):
    done = service.run_stream(specs)
    sim.run(stop_event=done)
    return service.states()


class TestSingleJob:
    def test_completes_and_accounts(self):
        sim, _grid, service = build_service()
        states = run_stream(sim, service, [spec("j0")])
        (state,) = states
        assert state.status == "completed"
        assert state.started_at == 0.0
        assert state.finished_at == sim.now
        assert len(state.hosts) == 2
        assert service.audit_conflicts() == []
        stats = sim.stats
        assert stats.meta_submitted == 1
        assert stats.meta_started == 1
        assert stats.meta_completed == 1
        assert stats.meta_rejected == 0
        assert stats.meta_cpu_seconds > 0.0
        assert service.queue.usage["u0"] == pytest.approx(
            stats.meta_cpu_seconds)

    def test_duplicate_name_rejected(self):
        sim, _grid, service = build_service()
        service.submit(spec("j0"))
        with pytest.raises(ValueError):
            service.submit(spec("j0"))


class TestContention:
    def test_oversubscribed_stream_serializes_without_conflicts(self):
        sim, _grid, service = build_service()
        # Three 12-host jobs submitted together: only one can hold the
        # testbed at a time.
        states = run_stream(sim, service, [
            spec("a", user="u0", n_hosts=12, submit=0.0),
            spec("b", user="u1", n_hosts=12, submit=1.0),
            spec("c", user="u2", n_hosts=12, submit=2.0),
        ])
        assert [s.status for s in states] == ["completed"] * 3
        assert service.audit_conflicts() == []
        # strictly serialized: each next job starts after the previous
        # one finished
        by_start = sorted(states, key=lambda s: s.started_at)
        for earlier, later in zip(by_start, by_start[1:]):
            assert later.started_at >= earlier.finished_at
        assert sim.stats.meta_queue_wait_seconds > 0.0
        assert sim.stats.meta_reservations > 0

    def test_small_job_backfills_around_blocked_head(self):
        sim, _grid, service = build_service()
        # "big" holds 10 of 12 hosts; "wide" needs all 12 and must wait;
        # "tiny" fits on the 2 idle hosts and jumps the queue.
        states = run_stream(sim, service, [
            spec("big", user="u0", n_hosts=10, size=9000.0, submit=0.0),
            spec("wide", user="u1", n_hosts=12, size=4000.0, submit=1.0),
            spec("tiny", user="u2", n_hosts=2, size=2000.0, submit=2.0),
        ])
        big, wide, tiny = states
        assert [s.status for s in states] == ["completed"] * 3
        assert tiny.backfilled
        assert tiny.started_at < wide.started_at
        assert wide.started_at >= big.finished_at
        assert sim.stats.meta_backfilled == 1
        assert service.audit_conflicts() == []

    def test_generated_stream_is_conflict_free(self):
        sim, _grid, service = build_service()
        specs = generate_stream(4, 1 / 90.0, 2400.0, RngRegistry(11))
        states = run_stream(sim, service, specs)
        assert all(s.status == "completed" for s in states)
        assert service.audit_conflicts() == []
        assert sim.stats.meta_completed == len(specs)


class TestAdmission:
    def test_queue_cap_rejects(self):
        sim, _grid, service = build_service(max_queue=1)
        states = run_stream(sim, service, [
            spec("a", user="u0", n_hosts=12, submit=0.0),
            spec("b", user="u1", n_hosts=12, submit=1.0),
            spec("c", user="u2", n_hosts=12, submit=2.0),
        ])
        statuses = {s.spec.name: s.status for s in states}
        assert statuses["a"] == "completed"
        assert statuses["b"] == "completed"
        assert statuses["c"] == "rejected"
        assert states[2].reject_reason == "queue-full"
        assert sim.stats.meta_rejected == 1

    def test_per_user_quota_rejects(self):
        sim, _grid, service = build_service(max_per_user=1)
        states = run_stream(sim, service, [
            spec("a", user="u0", n_hosts=12, submit=0.0),
            spec("b", user="u0", n_hosts=12, submit=1.0),
            spec("c", user="u0", n_hosts=12, submit=2.0),
        ])
        reasons = [s.reject_reason for s in states]
        assert reasons.count("user-quota") == 1

    def test_impossible_job_rejected_up_front(self):
        sim, _grid, service = build_service()
        states = run_stream(sim, service, [spec("huge", n_hosts=13)])
        assert states[0].status == "rejected"
        assert states[0].reject_reason == "insufficient-resources"


class TestTraceLane:
    def test_lifecycle_instants_and_spans(self):
        tracer = Tracer(categories=["metasched"])
        sim, _grid, service = build_service(tracer=tracer, max_queue=2)
        run_stream(sim, service, [
            spec("big", user="u0", n_hosts=10, size=9000.0, submit=0.0),
            spec("wide", user="u1", n_hosts=12, size=4000.0, submit=1.0),
            spec("tiny", user="u2", n_hosts=2, size=2000.0, submit=2.0),
            spec("late", user="u3", n_hosts=13, submit=3.0),  # rejected
        ])
        records = tracer.select("metasched")
        names = {r.name for r in records}
        assert {"submit", "admit", "queue", "reserve", "backfill",
                "start", "complete", "reject"} <= names
        spans = [r for r in records if r.name.startswith("job:")]
        assert {s.name for s in spans} == {"job:big", "job:wide",
                                           "job:tiny"}
        assert all(s.dur > 0 for s in spans)

    def test_untraced_run_is_clean(self):
        sim, _grid, service = build_service()
        states = run_stream(sim, service, [spec("j0")])
        assert states[0].status == "completed"


class TestReschedulerIntegration:
    def test_migration_targets_avoid_reserved_hosts(self):
        sim, _grid, service = build_service()
        # Claim the whole UIUC cluster far into the future.
        uiuc = [f"uiuc.n{i}" for i in range(8)]
        service.book.reserve_block("tenant", uiuc, 0.0, 1e6)

        seen = {}

        class App:
            def current_hosts(self):
                return ["utk.n0", "utk.n1"]

            def propose_hosts(self, exclude=()):
                seen["exclude"] = sorted(exclude)
                raise RuntimeError("stop here")

        resched = Rescheduler(sim, service.gis, service.nws,
                              reservations=service.book)
        assert resched.evaluate(App()) is None
        for host in uiuc:
            assert host in seen["exclude"]

    def test_without_reservations_no_exclusion(self):
        sim, _grid, service = build_service()
        service.book.reserve_block("tenant", ["uiuc.n0"], 0.0, 1e6)
        seen = {}

        class App:
            def current_hosts(self):
                return ["utk.n0"]

            def propose_hosts(self, exclude=()):
                seen["exclude"] = sorted(exclude)
                raise RuntimeError("stop here")

        resched = Rescheduler(sim, service.gis, service.nws)
        assert resched.evaluate(App()) is None
        assert "uiuc.n0" not in seen["exclude"]


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        from repro.experiments.metasched_stream import run_metasched

        a = run_metasched(users=3, arrival_rate=1 / 150.0, duration=1500.0,
                          seed=5)
        b = run_metasched(users=3, arrival_rate=1 / 150.0, duration=1500.0,
                          seed=5)
        assert a.to_json() == b.to_json()
        assert a.report()["schema_version"] == 1

    def test_different_seeds_differ(self):
        from repro.experiments.metasched_stream import run_metasched

        a = run_metasched(users=3, arrival_rate=1 / 150.0, duration=1500.0,
                          seed=5)
        b = run_metasched(users=3, arrival_rate=1 / 150.0, duration=1500.0,
                          seed=6)
        assert a.to_json() != b.to_json()
