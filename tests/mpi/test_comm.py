"""Tests for the simulated MPI layer."""

import pytest

from repro.sim import Simulator
from repro.microgrid import Architecture, Host, Topology
from repro.mpi import ANY_SOURCE, MpiError, MpiJob


def make_job(n=4, bw=1e7, lat=0.001, mflops=100.0):
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=mflops)
    hosts = []
    topo.add_node("sw")
    for i in range(n):
        host = Host(sim, f"h{i}", arch)
        topo.attach_host(host)
        topo.add_link(host.name, "sw", bandwidth=bw, latency=lat / 2)
        hosts.append(host)
    job = MpiJob(sim, topo, hosts, name="test")
    return sim, job


class TestPointToPoint:
    def test_send_recv_delivers_payload(self):
        sim, job = make_job(2)
        got = []

        def body(ctx):
            if ctx.rank == 0:
                yield ctx.send(dst=1, nbytes=1000, payload={"x": 1})
            else:
                msg = yield ctx.recv(src=0)
                got.append(msg.payload)

        job.launch(body)
        sim.run()
        assert got == [{"x": 1}]

    def test_recv_before_send_blocks_until_delivery(self):
        sim, job = make_job(2, bw=1e6, lat=0.0)
        arrival = []

        def body(ctx):
            if ctx.rank == 1:
                msg = yield ctx.recv(src=0)
                arrival.append(ctx.sim.now)
            else:
                yield ctx.sim.timeout(1.0)
                yield ctx.send(dst=1, nbytes=1e6)

        job.launch(body)
        sim.run()
        # send at t=1, transfer takes 1 s at 1 MB/s
        assert arrival[0] == pytest.approx(2.0, rel=1e-3)

    def test_message_order_preserved_per_pair(self):
        sim, job = make_job(2)
        received = []

        def body(ctx):
            if ctx.rank == 0:
                yield ctx.send(dst=1, nbytes=100, payload="first")
                yield ctx.send(dst=1, nbytes=100, payload="second")
            else:
                m1 = yield ctx.recv(src=0)
                m2 = yield ctx.recv(src=0)
                received.extend([m1.payload, m2.payload])

        job.launch(body)
        sim.run()
        assert received == ["first", "second"]

    def test_tag_matching_skips_nonmatching(self):
        sim, job = make_job(2)
        got = []

        def body(ctx):
            if ctx.rank == 0:
                yield ctx.send(dst=1, nbytes=10, tag=7, payload="seven")
                yield ctx.send(dst=1, nbytes=10, tag=9, payload="nine")
            else:
                msg = yield ctx.recv(src=0, tag=9)
                got.append(msg.payload)
                msg = yield ctx.recv(src=0, tag=7)
                got.append(msg.payload)

        job.launch(body)
        sim.run()
        assert got == ["nine", "seven"]

    def test_any_source_matches(self):
        sim, job = make_job(3)
        got = []

        def body(ctx):
            if ctx.rank == 2:
                for _ in range(2):
                    msg = yield ctx.recv(src=ANY_SOURCE)
                    got.append(msg.src)
            else:
                yield ctx.sim.timeout(0.1 * (ctx.rank + 1))
                yield ctx.send(dst=2, nbytes=10)

        job.launch(body)
        sim.run()
        assert sorted(got) == [0, 1]

    def test_validation(self):
        sim, job = make_job(2)
        with pytest.raises(MpiError):
            job.world.send(0, 5, 100)
        with pytest.raises(MpiError):
            job.world.send(0, 1, -1)
        with pytest.raises(MpiError):
            job.world.send(0, 1, 10, tag=-3)
        with pytest.raises(MpiError):
            job.rank_host(9)

    def test_empty_host_list_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        with pytest.raises(MpiError):
            MpiJob(sim, topo, [])

    def test_double_launch_rejected(self):
        sim, job = make_job(2)

        def body(ctx):
            yield ctx.sim.timeout(0.0)

        job.launch(body)
        with pytest.raises(MpiError):
            job.launch(body)


class TestCompute:
    def test_compute_runs_on_mapped_host(self):
        sim, job = make_job(2, mflops=100.0)
        times = {}

        def body(ctx):
            yield ctx.compute(100.0 * (ctx.rank + 1))
            times[ctx.rank] = ctx.sim.now

        job.launch(body)
        sim.run()
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(2.0)

    def test_counters_accumulate(self):
        sim, job = make_job(2)

        def body(ctx):
            yield ctx.compute(50.0)
            if ctx.rank == 0:
                yield ctx.send(dst=1, nbytes=1234)
            else:
                yield ctx.recv(src=0)

        job.launch(body)
        sim.run()
        assert job.counters[0].mflop == pytest.approx(50.0)
        assert job.counters[0].bytes_sent == pytest.approx(1234)
        assert job.counters[0].messages_sent == 1
        assert job.counters[1].bytes_received == pytest.approx(1234)
        assert job.counters[0].comm_seconds > 0

    def test_counter_snapshot_delta(self):
        sim, job = make_job(1)

        def body(ctx):
            yield ctx.compute(10.0)

        job.launch(body)
        sim.run()
        snap = job.counters[0].snapshot()
        job.counters[0].mflop += 5.0
        delta = job.counters[0].delta_since(snap)
        assert delta["mflop"] == pytest.approx(5.0)
        assert delta["bytes_sent"] == 0.0


class TestCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
    def test_barrier_synchronizes(self, size):
        sim, job = make_job(size)
        releases = []

        def body(ctx):
            # stagger arrivals; all must leave at (or after) the latest
            yield ctx.sim.timeout(float(ctx.rank))
            yield from ctx.comm.barrier(ctx.rank)
            releases.append(ctx.sim.now)

        job.launch(body)
        sim.run()
        latest_arrival = size - 1
        assert all(t >= latest_arrival for t in releases)

    @pytest.mark.parametrize("size,root", [(2, 0), (4, 0), (5, 2), (8, 7)])
    def test_bcast_delivers_to_all(self, size, root):
        sim, job = make_job(size)
        got = {}

        def body(ctx):
            payload = "data" if ctx.rank == root else None
            value = yield from ctx.comm.bcast(ctx.rank, root, nbytes=1e4,
                                              payload=payload)
            got[ctx.rank] = value

        job.launch(body)
        sim.run()
        assert got == {r: "data" for r in range(size)}

    def test_gather_collects_at_root(self):
        sim, job = make_job(4)
        result = []

        def body(ctx):
            values = yield from ctx.comm.gather(ctx.rank, root=0,
                                                nbytes=100,
                                                payload=ctx.rank * 10)
            if ctx.rank == 0:
                result.append(values)

        job.launch(body)
        sim.run()
        assert result == [[0, 10, 20, 30]]

    @pytest.mark.parametrize("size", [2, 3, 5])
    def test_allgather_everyone_has_everything(self, size):
        sim, job = make_job(size)
        got = {}

        def body(ctx):
            values = yield from ctx.comm.allgather(ctx.rank, nbytes=100,
                                                   payload=ctx.rank ** 2)
            got[ctx.rank] = values

        job.launch(body)
        sim.run()
        expected = [r ** 2 for r in range(size)]
        assert all(got[r] == expected for r in range(size))

    def test_allreduce_sums(self):
        sim, job = make_job(4)
        got = {}

        def body(ctx):
            total = yield from ctx.comm.allreduce(ctx.rank, nbytes=8,
                                                  value=float(ctx.rank + 1))
            got[ctx.rank] = total

        job.launch(body)
        sim.run()
        assert all(v == pytest.approx(10.0) for v in got.values())

    def test_sequential_collectives_dont_cross_talk(self):
        sim, job = make_job(3)
        got = {}

        def body(ctx):
            a = yield from ctx.comm.bcast(ctx.rank, 0, nbytes=10,
                                          payload="A" if ctx.rank == 0 else None)
            b = yield from ctx.comm.bcast(ctx.rank, 1, nbytes=10,
                                          payload="B" if ctx.rank == 1 else None)
            got[ctx.rank] = (a, b)

        job.launch(body)
        sim.run()
        assert all(v == ("A", "B") for v in got.values())

    def test_job_finished_event(self):
        sim, job = make_job(3)

        def body(ctx):
            yield ctx.compute(100.0)

        finished = job.launch(body)
        sim.run()
        assert finished.triggered and finished.ok

    def test_iteration_reporting(self):
        sim, job = make_job(2)
        reports = []
        job.on_iteration(lambda r, i, s: reports.append((r, i, s)))

        def body(ctx):
            for it in range(3):
                start = ctx.sim.now
                yield ctx.compute(10.0)
                ctx.report_iteration(it, ctx.sim.now - start)

        job.launch(body)
        sim.run()
        assert len(reports) == 6
        assert job.counters[0].iterations == 3


class TestScatterReduce:
    def test_scatter_deals_shares(self):
        sim, job = make_job(4)
        got = {}

        def body(ctx):
            payloads = [r * 100 for r in range(4)] if ctx.rank == 1 else None
            share = yield from ctx.comm.scatter(ctx.rank, root=1,
                                                nbytes=100,
                                                payloads=payloads)
            got[ctx.rank] = share

        job.launch(body)
        sim.run()
        assert got == {0: 0, 1: 100, 2: 200, 3: 300}

    def test_scatter_wrong_count_rejected(self):
        sim, job = make_job(3)
        failures = []

        def body(ctx):
            try:
                yield from ctx.comm.scatter(ctx.rank, root=0, nbytes=10,
                                            payloads=[1, 2] if ctx.rank == 0
                                            else None)
            except Exception as exc:
                failures.append(type(exc).__name__)
                if ctx.rank != 0:
                    return
                return
            # non-root ranks block forever otherwise; give them an exit
        # only run rank 0's failure path: use a 1-rank check instead
        sim2, job2 = make_job(1)

        def solo(ctx):
            try:
                yield from ctx.comm.scatter(ctx.rank, root=0, nbytes=10,
                                            payloads=[1, 2])
            except Exception as exc:
                failures.append(type(exc).__name__)

        job2.launch(solo)
        sim2.run()
        assert "MpiError" in failures

    def test_reduce_to_root(self):
        sim, job = make_job(5)
        results = {}

        def body(ctx):
            out = yield from ctx.comm.reduce(ctx.rank, root=2, nbytes=8,
                                             value=float(ctx.rank))
            results[ctx.rank] = out

        job.launch(body)
        sim.run()
        assert results[2] == pytest.approx(10.0)
        assert all(results[r] is None for r in (0, 1, 3, 4))

    def test_reduce_custom_op(self):
        sim, job = make_job(4)
        results = {}

        def body(ctx):
            out = yield from ctx.comm.reduce(ctx.rank, root=0, nbytes=8,
                                             value=float(ctx.rank + 1),
                                             op=max)
            results[ctx.rank] = out

        job.launch(body)
        sim.run()
        assert results[0] == pytest.approx(4.0)


class TestDeathWatch:
    """Ranks must die with their host even when blocked on
    communication rather than compute (the mid-checkpoint hang)."""

    def test_rank_blocked_on_recv_dies_with_host(self):
        from repro.microgrid import HostFailure
        sim, job = make_job(2)
        died = []

        def body(ctx):
            if ctx.rank == 1:
                try:
                    yield ctx.recv(src=0)  # nothing is ever sent
                except HostFailure as exc:
                    died.append((ctx.sim.now, exc.host_name))
            else:
                yield ctx.sim.timeout(10.0)

        job.launch(body)
        victim = job._rank_hosts[1]
        sim.call_after(2.0, victim.fail)
        sim.run()
        assert died == [(2.0, "h1")]

    def test_rank_blocked_on_transfer_dies_with_host(self):
        from repro.microgrid import HostFailure
        sim, job = make_job(2, bw=1e3)  # 1e6 bytes take ~1000 s
        died = []

        def body(ctx):
            if ctx.rank == 0:
                try:
                    yield ctx.send(dst=1, nbytes=1e6)
                except HostFailure:
                    died.append(ctx.sim.now)
            else:
                yield ctx.sim.timeout(1.0)

        job.launch(body)
        victim = job._rank_hosts[0]
        sim.call_after(5.0, victim.fail)
        sim.run(until=2000.0)
        assert died == [5.0]

    def test_rank_blocked_on_barrier_dies_with_host(self):
        from repro.microgrid import HostFailure
        sim, job = make_job(2)
        died = []

        def body(ctx):
            if ctx.rank == 0:
                try:
                    yield from ctx.comm.barrier(ctx.rank)
                except HostFailure:
                    died.append(ctx.sim.now)
            else:
                yield ctx.sim.timeout(100.0)

        job.launch(body)
        victim = job._rank_hosts[0]
        sim.call_after(3.0, victim.fail)
        sim.run(until=200.0)
        assert died == [3.0]

    def test_survivor_ranks_unaffected(self):
        from repro.microgrid import HostFailure
        sim, job = make_job(3)
        outcome = {}

        def body(ctx):
            try:
                yield ctx.sim.timeout(1.0 if ctx.rank == 0 else 20.0)
                outcome[ctx.rank] = "finished"
            except HostFailure:
                outcome[ctx.rank] = "died"

        job.launch(body)
        victim = job._rank_hosts[1]
        sim.call_after(5.0, victim.fail)
        sim.run(until=100.0)
        assert outcome == {0: "finished", 1: "died", 2: "finished"}
