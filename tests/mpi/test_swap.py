"""Tests for MPI process swapping."""

import pytest

from repro.sim import Simulator
from repro.microgrid import Architecture, Host, Topology
from repro.mpi import MpiError, SwappableJob


def make_pool(n=6, fast_mflops=100.0, slow_mflops=50.0, n_fast=3):
    sim = Simulator()
    topo = Topology(sim)
    hosts = []
    topo.add_node("sw")
    for i in range(n):
        arch = Architecture(
            name=f"a{i}",
            mflops=fast_mflops if i < n_fast else slow_mflops)
        host = Host(sim, f"h{i}", arch)
        topo.attach_host(host)
        topo.add_link(host.name, "sw", bandwidth=1e8, latency=1e-4)
        hosts.append(host)
    return sim, topo, hosts


def iterative_body(swap_job, n_iters, mflop_per_iter):
    def body(ctx):
        for it in range(n_iters):
            start = ctx.sim.now
            yield ctx.compute(mflop_per_iter)
            yield from swap_job.sync_point(ctx)
            ctx.report_iteration(it, ctx.sim.now - start)
    return body


class TestSwappableJob:
    def test_active_inactive_partition(self):
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3)
        assert [h.name for h in job.active_hosts()] == ["h0", "h1", "h2"]
        assert [h.name for h in job.inactive_hosts()] == ["h3", "h4", "h5"]

    def test_active_n_validation(self):
        sim, topo, hosts = make_pool()
        with pytest.raises(MpiError):
            SwappableJob(sim, topo, hosts, active_n=0)
        with pytest.raises(MpiError):
            SwappableJob(sim, topo, hosts, active_n=7)

    def test_app_runs_on_active_set_only(self):
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3)
        job.launch(iterative_body(job, 2, 100.0))
        sim.run()
        assert all(h.mflop_done > 0 for h in hosts[:3])
        assert all(h.mflop_done == 0 for h in hosts[3:])

    def test_swap_moves_rank_to_new_host(self):
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3,
                           state_bytes_per_rank=1e6)
        job.launch(iterative_body(job, 5, 100.0))
        # Ask for the swap before the first sync point.
        job.request_swap(1, hosts[4])
        sim.run()
        assert hosts[4].mflop_done > 0  # the new host did work
        assert len(job.swap_log) == 1
        record = job.swap_log[0]
        assert record.old_host == "h1"
        assert record.new_host == "h4"
        assert record.logical_rank == 1
        # old host returned to the inactive set
        assert hosts[1] in job.inactive_hosts()
        assert hosts[4] in job.active_hosts()

    def test_swap_request_validation(self):
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3)
        with pytest.raises(MpiError):
            job.request_swap(5, hosts[4])  # not an active logical rank
        with pytest.raises(MpiError):
            job.request_swap(0, hosts[1])  # target not inactive
        job.request_swap(0, hosts[3])
        with pytest.raises(MpiError):
            job.request_swap(1, hosts[3])  # target already claimed

    def test_swap_takes_effect_at_iteration_boundary(self):
        """A swap requested mid-iteration must not preempt the running
        compute call."""
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3)
        job.launch(iterative_body(job, 3, 100.0))  # 1 s per iter on fast
        sim.call_after(0.5, lambda: job.request_swap(0, hosts[3]))
        sim.run()
        record = job.swap_log[0]
        assert record.time >= 1.0  # not before the first boundary

    def test_swap_to_slow_host_slows_job(self):
        sim, topo, hosts = make_pool()
        baseline_job = SwappableJob(sim, topo, hosts, active_n=3)
        baseline_job.launch(iterative_body(baseline_job, 5, 100.0))
        sim.run()
        baseline = sim.now

        sim2, topo2, hosts2 = make_pool()
        job2 = SwappableJob(sim2, topo2, hosts2, active_n=3)
        job2.request_swap(0, hosts2[5])  # slow host
        job2.launch(iterative_body(job2, 5, 100.0))
        sim2.run()
        assert sim2.now > baseline  # bulk-synchronous: slowest dominates

    def test_swap_state_transfer_cost_counted(self):
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3,
                           state_bytes_per_rank=1e8)  # 1 s at 1e8 B/s
        job.request_swap(0, hosts[3])
        job.launch(iterative_body(job, 2, 100.0))
        sim.run()
        assert job.swap_log[0].seconds == pytest.approx(1.0, rel=0.1)

    def test_multiple_swaps_in_one_sync(self):
        sim, topo, hosts = make_pool()
        job = SwappableJob(sim, topo, hosts, active_n=3)
        job.request_swap(0, hosts[3])
        job.request_swap(1, hosts[4])
        job.request_swap(2, hosts[5])
        job.launch(iterative_body(job, 3, 100.0))
        sim.run()
        assert len(job.swap_log) == 3
        assert {h.name for h in job.active_hosts()} == {"h3", "h4", "h5"}

    def test_swapping_all_to_faster_speeds_completion(self):
        """Starting on slow hosts and swapping to fast ones must beat
        staying on the slow hosts (the Figure 4 story)."""
        # stay on slow hosts h3..h5
        sim, topo, hosts = make_pool(n_fast=3)
        stay = SwappableJob(sim, topo, list(reversed(hosts)), active_n=3)
        stay.launch(iterative_body(stay, 20, 100.0))
        sim.run()
        stay_time = sim.now

        sim2, topo2, hosts2 = make_pool(n_fast=3)
        move = SwappableJob(sim2, topo2, list(reversed(hosts2)), active_n=3,
                            state_bytes_per_rank=1e6)
        for rank, target in enumerate(hosts2[:3]):
            move.request_swap(rank, target)
        move.launch(iterative_body(move, 20, 100.0))
        sim2.run()
        assert sim2.now < stay_time
