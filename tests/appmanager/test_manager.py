"""Tests for the GradsEnvironment assembly."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed, fig4_testbed
from repro.appmanager import DEFAULT_PACKAGES, GradsEnvironment
from repro.apps import QrBenchmark
from repro.binder import BINDER_PACKAGE
from repro.microgrid.dml import Grid


class TestEnvironmentAssembly:
    def test_all_services_wired(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        assert len(env.gis) == len(grid.all_hosts())
        assert env.binder.package_source == env.submission_host
        assert env.nws.cpu_forecast("utk.n0") == pytest.approx(1.0)

    def test_default_submission_host_is_first(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        assert env.submission_host == grid.all_hosts()[0].name

    def test_custom_submission_host(self):
        sim = Simulator()
        grid = fig4_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="ucsd.n0")
        assert env.submission_host == "ucsd.n0"

    def test_empty_grid_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            GradsEnvironment(sim, Grid(sim))

    def test_default_software_preinstalled_everywhere(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        for host in grid.all_hosts():
            for package in DEFAULT_PACKAGES:
                assert env.software.is_installed(package, host.name)
        assert BINDER_PACKAGE in DEFAULT_PACKAGES

    def test_custom_package_set(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid,
                               packages=(BINDER_PACKAGE, "custom-lib"))
        assert env.software.is_installed("custom-lib", "utk.n0")
        assert not env.software.is_installed("scalapack", "utk.n0")

    def test_managed_qr_returns_wired_triple(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        run, monitor, rescheduler = env.managed_qr(
            QrBenchmark(n=1000),
            initial_hosts=["utk.n0", "utk.n1"])
        assert run.monitor is monitor
        assert monitor.rescheduler is not None
        assert rescheduler.managed_apps() == [run]

    def test_managed_qr_contract_limits_passed(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        run, monitor, _ = env.managed_qr(
            QrBenchmark(n=1000), initial_hosts=["utk.n0", "utk.n1"],
            contract_upper=2.0, contract_lower=0.25, monitor_window=7)
        assert monitor.upper == 2.0
        assert monitor.lower == 0.25
        assert monitor.window == 7

    def test_stable_storage_targets_submission_host(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="uiuc.n7")
        run, _m, _r = env.managed_qr(
            QrBenchmark(n=1000), initial_hosts=["utk.n0", "utk.n1"],
            stable_storage=True)
        assert run.srs.stable_host is not None
        assert run.srs.stable_host.name == "uiuc.n7"

    def test_without_stable_storage_checkpoints_local(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        run, _m, _r = env.managed_qr(
            QrBenchmark(n=1000), initial_hosts=["utk.n0", "utk.n1"])
        assert run.srs.stable_host is None
