"""Tests for the fault-injection campaign runner."""

import json

import pytest

from repro.faults import CampaignSpec, cell_seed, run_campaign, run_cell


def tiny_spec(**overrides):
    """A spec small enough for unit tests (one cell, N=3000)."""
    kwargs = dict(mtbf_grid=(500.0,), mttr_grid=(60.0,), trials=1,
                  seed=0, n=3000, checkpoint_every=3)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(mtbf_grid=())
        with pytest.raises(ValueError):
            CampaignSpec(mtbf_grid=(-1.0,))
        with pytest.raises(ValueError):
            CampaignSpec(mttr_grid=(0.0,))
        with pytest.raises(ValueError):
            CampaignSpec(trials=0)
        with pytest.raises(ValueError):
            CampaignSpec(deadline=0.0)

    def test_cells_sweep_order(self):
        spec = CampaignSpec(mtbf_grid=(100.0, 200.0), mttr_grid=(10.0, 20.0))
        assert spec.cells() == [(100.0, 10.0), (100.0, 20.0),
                                (200.0, 10.0), (200.0, 20.0)]

    def test_cell_seeds_unique(self):
        spec = CampaignSpec(seed=3)
        seeds = [cell_seed(spec, cell, trial)
                 for cell in range(4) for trial in range(5)]
        assert len(set(seeds)) == len(seeds)

    def test_campaign_seed_shifts_every_cell_seed(self):
        a, b = CampaignSpec(seed=0), CampaignSpec(seed=1)
        assert cell_seed(a, 0, 0) != cell_seed(b, 0, 0)


class TestRunCell:
    def test_cell_is_deterministic(self):
        spec = tiny_spec()
        one = run_cell(spec, 500.0, 60.0, trial=0, seed=42)
        two = run_cell(spec, 500.0, 60.0, trial=0, seed=42)
        assert one == two

    def test_cell_never_leaks_inflight_migrations(self):
        cell = run_cell(tiny_spec(), 500.0, 60.0, trial=0, seed=0)
        assert cell["migrating_leaked"] == []
        assert cell["outcome"] in ("completed", "failed", "deadline")
        assert cell["steps_done"] <= cell["steps_total"]


class TestCampaign:
    def test_same_seed_byte_identical_json(self):
        """The ISSUE acceptance criterion: equal specs, equal bytes."""
        a = run_campaign(tiny_spec(), with_scenarios=False).to_json()
        b = run_campaign(tiny_spec(), with_scenarios=False).to_json()
        assert a.encode("utf-8") == b.encode("utf-8")

    def test_different_seed_changes_report(self):
        a = run_campaign(tiny_spec(), with_scenarios=False).to_json()
        b = run_campaign(tiny_spec(seed=1), with_scenarios=False).to_json()
        assert a != b

    def test_report_structure_and_summary(self):
        result = run_campaign(tiny_spec(trials=2), with_scenarios=False)
        report = result.report()
        assert set(report) == {"schema_version", "spec", "cells",
                               "scenarios", "summary"}
        assert report["schema_version"] == 1
        assert len(report["cells"]) == 2
        summary = report["summary"]
        assert summary["trials"] == 2
        assert summary["completion_rate"] == result.completion_rate()
        assert summary["total_injected_failures"] == sum(
            c["injected_failures"] for c in report["cells"])
        assert summary["total_recoveries"] == sum(
            c["failures_recovered"] for c in report["cells"])
        assert summary["scenarios_total"] == 0
        # the JSON round-trips (tuples in the spec become lists)
        decoded = json.loads(result.to_json())
        assert decoded["summary"] == summary
        assert decoded["cells"] == report["cells"]

    def test_empty_campaign_completion_rate(self):
        from repro.faults import CampaignResult
        assert CampaignResult(spec=tiny_spec()).completion_rate() == 0.0
