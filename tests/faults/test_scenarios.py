"""Tests for the scripted kill scenarios.

These exercise the full recovery stack end to end: host death-watch,
launcher/binder dead-host refusal, bounded retry-with-backoff, and the
rescheduler's abandon-and-blacklist path.
"""

import pytest

from repro.faults import SCENARIOS, run_scenario, run_scenarios
from repro.faults.scenarios import host_death_mid_migration


@pytest.fixture(scope="module")
def results():
    out = run_scenarios()
    return {r["name"]: r for r in out}


class TestHostDeathMidMigration:
    def test_completes_via_checkpoint_restart(self, results):
        """ISSUE acceptance: a host dying mid-migration must abort the
        migration (no `_migrating` leak) and still complete the run."""
        result = results["host-death-mid-migration"]
        assert result["completed"]
        assert result["failures_recovered"] >= 1
        assert result["aborted_migrations"] >= 1
        assert result["migrating_leaked"] == []
        assert result["passed"]

    def test_scenario_is_deterministic(self, results):
        assert host_death_mid_migration() == \
            results["host-death-mid-migration"]


class TestCandidateSetWipeout:
    def test_backoff_outlasts_the_outage(self, results):
        result = results["candidate-set-wipeout"]
        assert result["completed"]
        assert result["failures_recovered"] >= 1
        assert result["retry_waits"] >= 1
        assert result["passed"]


class TestCrashRecoverChurn:
    def test_every_crash_restarts_from_checkpoint(self, results):
        result = results["crash-recover-churn"]
        assert result["completed"]
        assert result["failures_recovered"] >= 2
        assert len(result["victims"]) >= 2
        assert result["migrating_leaked"] == []
        assert result["passed"]


class TestRegistry:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("power-cut")

    def test_run_scenarios_covers_registry_in_order(self, results):
        assert list(results) == list(SCENARIOS)

    def test_all_scenarios_pass(self, results):
        assert all(r["passed"] for r in results.values())
