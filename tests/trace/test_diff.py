"""Tests for the determinism diff."""

from repro.sim import Simulator
from repro.trace import (
    Tracer,
    diff_files,
    first_divergence,
    format_divergence,
    load_trace_file,
    records_as_dicts,
    write_chrome,
    write_jsonl,
)


def make_tracer(tweak=None):
    tracer = Tracer().bind(Simulator())
    tracer.instant("meta", "run", experiment="t")
    tracer.complete("scheduler", "task:a", ts=1.0, dur=2.0, host="h0")
    tracer.instant("contract", "violation", kind="slow", ratio=1.5)
    if tweak:
        tweak(tracer)
    return tracer


class TestFirstDivergence:
    def test_identical_traces_return_none(self):
        assert first_divergence(make_tracer(), make_tracer()) is None

    def test_differing_arg_pinpointed(self):
        a = make_tracer()
        b = Tracer().bind(Simulator())
        b.instant("meta", "run", experiment="t")
        b.complete("scheduler", "task:a", ts=1.0, dur=2.0, host="h1")
        b.instant("contract", "violation", kind="slow", ratio=1.5)
        div = first_divergence(a, b)
        assert div is not None
        assert div.index == 1
        assert div.kind == "record"
        assert div.left["args"]["host"] == "h0"
        assert div.right["args"]["host"] == "h1"

    def test_length_mismatch(self):
        a = make_tracer()
        b = make_tracer(tweak=lambda t: t.instant("meta", "extra"))
        div = first_divergence(a, b)
        assert div.kind == "length"
        assert div.index == 3
        assert div.left is None
        assert div.right["name"] == "extra"

    def test_accepts_dict_lists(self):
        dicts = records_as_dicts(make_tracer())
        assert first_divergence(dicts, list(dicts)) is None


class TestDiffFiles:
    def test_chrome_files(self, tmp_path):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome(make_tracer(), str(pa))
        write_chrome(make_tracer(), str(pb))
        assert diff_files(str(pa), str(pb)) is None

    def test_jsonl_files(self, tmp_path):
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(make_tracer(), str(pa))
        write_jsonl(make_tracer(
            tweak=lambda t: t.instant("meta", "extra")), str(pb))
        div = diff_files(str(pa), str(pb))
        assert div is not None and div.kind == "length"

    def test_mixed_formats_compare_equal(self, tmp_path):
        pa, pb = tmp_path / "a.json", tmp_path / "b.jsonl"
        write_chrome(make_tracer(), str(pa))
        write_jsonl(make_tracer(), str(pb))
        assert diff_files(str(pa), str(pb)) is None

    def test_load_trace_file_autodetects(self, tmp_path):
        tracer = make_tracer()
        pa, pb = tmp_path / "a.json", tmp_path / "b.jsonl"
        write_chrome(tracer, str(pa))
        write_jsonl(tracer, str(pb))
        assert load_trace_file(str(pa)) == load_trace_file(str(pb))


class TestFormatDivergence:
    def test_none_is_identical(self):
        assert "identical" in format_divergence(None)

    def test_record_divergence_shows_both_sides(self):
        a = make_tracer()
        b = make_tracer(tweak=None)
        b._records[1].args = {"host": "h9"}
        text = format_divergence(first_divergence(a, b),
                                 label_a="left.json", label_b="right.json")
        assert "left.json" in text and "right.json" in text
        assert "task:a" in text

    def test_length_divergence_names_surviving_trace(self):
        a = make_tracer()
        b = make_tracer(tweak=lambda t: t.instant("meta", "extra"))
        text = format_divergence(first_divergence(a, b),
                                 label_a="A", label_b="B")
        assert "only B continues" in text
