"""Tests for the trace analyses on synthetic records."""

import pytest

from repro.sim import Simulator
from repro.trace import (
    Tracer,
    critical_path,
    host_utilization,
    summarize,
    violation_timeline,
)


def synthetic_tracer():
    """Two hosts, three task spans, two violations.

    Timeline: h0 runs [0,4] and [6,8]; h1 runs [1,6].  The heaviest
    non-overlapping chain is [0,4] -> [6,8] (weight 6) vs [1,6] -> [6,8]
    (weight 7) — so the critical path is task:b then task:c.
    """
    tracer = Tracer().bind(Simulator())
    tracer.complete("scheduler", "task:a", ts=0.0, dur=4.0, host="h0")
    tracer.complete("scheduler", "task:b", ts=1.0, dur=5.0, host="h1")
    tracer.complete("scheduler", "task:c", ts=6.0, dur=2.0, host="h0")
    tracer.instant("contract", "violation", kind="slow", ratio=2.0,
                   average_ratio=1.5)
    tracer.instant("contract", "ratio", ratio=1.0)
    tracer.instant("contract", "violation", kind="fast", ratio=0.2,
                   average_ratio=0.4)
    return tracer


class TestHostUtilization:
    def test_busy_seconds_accumulate_per_host(self):
        stats = host_utilization(synthetic_tracer())
        assert stats["h0"]["busy_seconds"] == pytest.approx(6.0)
        assert stats["h1"]["busy_seconds"] == pytest.approx(5.0)

    def test_default_horizon_is_span_extent(self):
        stats = host_utilization(synthetic_tracer())  # extent = 8 - 0
        assert stats["h0"]["utilization"] == pytest.approx(6.0 / 8.0)

    def test_explicit_horizon(self):
        stats = host_utilization(synthetic_tracer(), horizon=10.0)
        assert stats["h1"]["utilization"] == pytest.approx(0.5)

    def test_no_host_spans_yields_empty(self):
        tracer = Tracer().bind(Simulator())
        tracer.instant("meta", "run")
        assert host_utilization(tracer) == {}

    def test_category_filter(self):
        tracer = synthetic_tracer()
        tracer.complete("reschedule", "checkpoint", ts=0.0, dur=100.0,
                        host="h0")
        scoped = host_utilization(tracer, category="scheduler")
        assert scoped["h0"]["busy_seconds"] == pytest.approx(6.0)


class TestViolationTimeline:
    def test_only_violation_instants_reported_in_order(self):
        timeline = violation_timeline(synthetic_tracer())
        assert [v["kind"] for v in timeline] == ["slow", "fast"]
        assert timeline[0]["ratio"] == 2.0
        assert timeline[1]["average_ratio"] == 0.4

    def test_empty_trace(self):
        assert violation_timeline(Tracer().bind(Simulator())) == []


class TestCriticalPath:
    def test_picks_heaviest_non_overlapping_chain(self):
        chain = critical_path(synthetic_tracer())
        assert [s["name"] for s in chain] == ["task:b", "task:c"]
        assert sum(s["dur"] for s in chain) == pytest.approx(7.0)

    def test_empty_when_no_spans(self):
        tracer = Tracer().bind(Simulator())
        tracer.instant("meta", "run")
        assert critical_path(tracer) == []

    def test_single_span_is_its_own_path(self):
        tracer = Tracer().bind(Simulator())
        tracer.complete("scheduler", "task:x", ts=0.0, dur=3.0)
        assert [s["name"] for s in critical_path(tracer)] == ["task:x"]

    def test_back_to_back_spans_chain(self):
        tracer = Tracer().bind(Simulator())
        tracer.complete("scheduler", "a", ts=0.0, dur=2.0)
        tracer.complete("scheduler", "b", ts=2.0, dur=2.0)  # starts at a's end
        assert len(critical_path(tracer)) == 2


class TestSummarize:
    def test_mentions_counts_violations_and_path(self):
        text = summarize(synthetic_tracer())
        assert "records: 6" in text
        assert "contract violations: 2" in text
        assert "critical path: 2 spans" in text
        assert "h0" in text
