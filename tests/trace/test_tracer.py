"""Tests for the core Tracer: filtering, ring buffer, binding."""

import pytest

from repro.sim import Simulator
from repro.trace import CATEGORIES, Instant, Span, Tracer


def bound_tracer(**kwargs):
    sim = Simulator()
    return Tracer(**kwargs).bind(sim), sim


class TestConstruction:
    def test_defaults_enable_every_category(self):
        tracer = Tracer()
        assert tracer.active == frozenset(CATEGORIES)
        assert tracer.enabled

    def test_category_subset(self):
        tracer = Tracer(categories=["network", "contract"])
        assert tracer.active == frozenset({"network", "contract"})

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(categories=["network", "bogus"])

    def test_disabled_tracer_has_empty_active_set(self):
        tracer = Tracer(enabled=False)
        assert tracer.active == frozenset()
        assert not tracer.enabled

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestBinding:
    def test_bind_sets_sim_trace(self):
        sim = Simulator()
        tracer = Tracer()
        assert tracer.bind(sim) is tracer
        assert sim.trace is tracer

    def test_unbound_now_raises(self):
        with pytest.raises(RuntimeError, match="not bound"):
            Tracer().now

    def test_rebinding_bumps_run_index(self):
        tracer, _sim = bound_tracer()
        tracer.instant("meta", "first")
        assert tracer.records[-1].run == 0
        tracer.bind(Simulator())
        tracer.instant("meta", "second")
        assert tracer.records[-1].run == 1

    def test_rebinding_same_sim_keeps_run_index(self):
        tracer, sim = bound_tracer()
        tracer.bind(sim)
        assert tracer.run == 0


class TestRecording:
    def test_instant_stamps_sim_time(self):
        tracer, sim = bound_tracer()
        sim.call_at(3.5, lambda: tracer.instant("meta", "mark", x=1))
        sim.run()
        (record,) = tracer.select("meta")
        assert isinstance(record, Instant)
        assert record.ts == 3.5
        assert record.name == "mark"
        assert record.args == {"x": 1}

    def test_complete_records_span(self):
        tracer, _sim = bound_tracer()
        tracer.complete("scheduler", "task:a", ts=1.0, dur=2.5, host="h0")
        (record,) = tracer.records
        assert isinstance(record, Span)
        assert (record.ts, record.dur) == (1.0, 2.5)
        assert record.args == {"host": "h0"}

    def test_inactive_category_is_filtered(self):
        tracer, _sim = bound_tracer(categories=["network"])
        tracer.instant("meta", "mark")
        tracer.complete("scheduler", "task:a", ts=0.0, dur=1.0)
        tracer.instant("network", "flow-add")
        assert len(tracer) == 1
        assert tracer.records[0].cat == "network"

    def test_disabled_tracer_records_nothing(self):
        tracer, _sim = bound_tracer(enabled=False)
        tracer.instant("meta", "mark")
        tracer.complete("network", "flow", ts=0.0, dur=1.0)
        assert len(tracer) == 0

    def test_select_by_category(self):
        tracer, _sim = bound_tracer()
        tracer.instant("meta", "a")
        tracer.instant("network", "b")
        tracer.instant("meta", "c")
        assert [r.name for r in tracer.select("meta")] == ["a", "c"]


class TestRingBuffer:
    def test_oldest_records_dropped_at_capacity(self):
        tracer, _sim = bound_tracer(capacity=3)
        for i in range(5):
            tracer.instant("meta", f"m{i}")
        assert len(tracer) == 3
        assert [r.name for r in tracer.records] == ["m2", "m3", "m4"]
        assert tracer.dropped == 2

    def test_clear_resets_buffer_and_counter(self):
        tracer, _sim = bound_tracer(capacity=2)
        for i in range(4):
            tracer.instant("meta", f"m{i}")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestKernelHook:
    def test_kernel_events_traced_during_run(self):
        tracer, sim = bound_tracer()
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        sim.run()
        kernel = tracer.select("kernel")
        assert len(kernel) == 2
        assert [r.ts for r in kernel] == [1.0, 2.0]

    def test_untraced_sim_defaults_to_none(self):
        sim = Simulator()
        assert sim.trace is None

    def test_kernel_category_filterable(self):
        tracer, sim = bound_tracer(categories=["meta"])
        sim.call_at(1.0, lambda: None)
        sim.run()
        assert tracer.select("kernel") == []

    def test_record_keys_are_comparable(self):
        tracer, sim = bound_tracer()
        tracer.instant("meta", "a", x=1)
        tracer.complete("meta", "b", ts=0.0, dur=1.0)
        keys = [r.key() for r in tracer.records]
        assert keys[0] != keys[1]
        assert keys[0] == Instant(0.0, "meta", "a", {"x": 1}, 0).key()
