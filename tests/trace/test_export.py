"""Tests for the Chrome / JSONL exporters and the schema validator."""

import json

from repro.sim import Simulator
from repro.trace import (
    Tracer,
    chrome_trace,
    read_jsonl,
    records_as_dicts,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.experiments.fig4_swap import run_fig4


def sample_tracer():
    tracer = Tracer().bind(Simulator())
    tracer.instant("meta", "run", experiment="t")
    tracer.complete("scheduler", "task:a", ts=1.0, dur=2.0, host="h0")
    tracer.instant("network", "flow-add", src="a", dst="b")
    return tracer


class TestRecordsAsDicts:
    def test_span_gets_dur_instants_do_not(self):
        dicts = records_as_dicts(sample_tracer())
        assert "dur" not in dicts[0]
        assert dicts[1]["dur"] == 2.0
        assert dicts[0]["args"] == {"experiment": "t"}

    def test_common_keys_present(self):
        for entry in records_as_dicts(sample_tracer()):
            assert {"ts", "cat", "name", "run", "args"} <= set(entry)


class TestChromeTrace:
    def test_structure_and_phases(self):
        obj = chrome_trace(sample_tracer())
        assert validate_chrome(obj) == []
        events = obj["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("X") == 1
        assert phases.count("i") == 2
        assert "M" in phases  # thread-name metadata

    def test_timestamps_in_microseconds(self):
        obj = chrome_trace(sample_tracer())
        span = next(e for e in obj["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1.0 * 1e6
        assert span["dur"] == 2.0 * 1e6

    def test_run_index_becomes_pid(self):
        tracer = sample_tracer()
        tracer.bind(Simulator())
        tracer.instant("meta", "second-run")
        obj = chrome_trace(tracer)
        pids = {e["pid"] for e in obj["traceEvents"] if e["ph"] != "M"}
        assert pids == {0, 1}


class TestValidateChrome:
    def test_rejects_non_dict(self):
        assert validate_chrome([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome({"foo": 1}) == ["missing or non-list "
                                               "'traceEvents'"]

    def test_flags_bad_phase_and_missing_fields(self):
        obj = {"traceEvents": [
            {"ph": "Z", "name": "x"},
            {"ph": "i", "name": "x"},          # missing ts + cat
            {"ph": "X", "name": "x", "ts": 0.0, "cat": "c", "dur": -1},
        ]}
        problems = validate_chrome(obj)
        assert any("bad phase" in p for p in problems)
        assert any("missing numeric ts" in p for p in problems)
        assert any("dur >= 0" in p for p in problems)

    def test_accepts_exporter_output(self, tmp_path):
        path = tmp_path / "t.json"
        write_chrome(sample_tracer(), str(path))
        with open(path) as handle:
            assert validate_chrome(json.load(handle)) == []


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "t.jsonl"
        write_jsonl(tracer, str(path))
        back = read_jsonl(str(path))
        assert back == records_as_dicts(tracer)

    def test_sorted_keys_on_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(sample_tracer(), str(path))
        first = path.read_text().splitlines()[0]
        keys = list(json.loads(first))
        assert keys == sorted(keys)


class TestDeterminism:
    def test_same_seed_fig4_exports_byte_identical(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            tracer = Tracer()
            run_fig4(n_iterations=15, tracer=tracer)
            path = tmp_path / name
            write_chrome(tracer, str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
