"""End-to-end instrumentation tests: real experiments, real hooks.

These run small fig3/fig4 scenarios with a tracer attached and check
that every instrumented layer emitted records consistent with the
experiment's own reported numbers.
"""

import pytest

from repro.experiments.fig3_qr import run_fig3_point
from repro.experiments.fig4_swap import run_fig4
from repro.trace import Tracer, violation_timeline


@pytest.fixture(scope="module")
def fig3_traced():
    tracer = Tracer()
    point = run_fig3_point(8000, "reschedule", tracer=tracer)
    return tracer, point


@pytest.fixture(scope="module")
def fig4_traced():
    tracer = Tracer()
    result = run_fig4(n_iterations=120, tracer=tracer)
    return tracer, result


class TestFig3Instrumentation:
    def test_checkpoint_and_restore_spans_present(self, fig3_traced):
        tracer, point = fig3_traced
        names = [r.name for r in tracer.select("reschedule")]
        assert "checkpoint" in names
        assert "restore" in names

    def test_restore_follows_migration(self, fig3_traced):
        tracer, point = fig3_traced
        assert point.migrations >= 1
        restores = [r for r in tracer.select("reschedule")
                    if r.name == "restore"]
        # every migrated rank restores from the depot
        assert len(restores) >= point.migrations

    def test_violations_precede_migration_requests(self, fig3_traced):
        tracer, _point = fig3_traced
        contract = tracer.select("contract")
        violations = [r for r in contract if r.name == "violation"]
        requests = [r for r in contract if r.name == "migration-request"]
        assert violations and requests
        assert min(r.ts for r in violations) <= min(r.ts for r in requests)

    def test_violation_timeline_matches_records(self, fig3_traced):
        tracer, _point = fig3_traced
        timeline = violation_timeline(tracer)
        assert len(timeline) == len(
            [r for r in tracer.select("contract") if r.name == "violation"])
        assert all(v["kind"] in ("slow", "fast") for v in timeline)

    def test_checkpoint_spans_have_positive_duration_and_host(self,
                                                              fig3_traced):
        tracer, _point = fig3_traced
        for record in tracer.select("reschedule"):
            if record.name == "checkpoint":
                assert record.dur > 0
                assert record.args["host"].startswith(("utk.", "uiuc."))

    def test_network_and_kernel_layers_fire(self, fig3_traced):
        tracer, _point = fig3_traced
        network = {r.name for r in tracer.select("network")}
        assert "flow-add" in network
        assert "realloc" in network
        assert tracer.select("kernel")

    def test_meta_marker_identifies_run(self, fig3_traced):
        tracer, _point = fig3_traced
        (marker,) = tracer.select("meta")
        assert marker.args["experiment"] == "fig3"
        assert marker.args["mode"] == "reschedule"


class TestFig4Instrumentation:
    def test_swap_spans_match_swap_log(self, fig4_traced):
        tracer, result = fig4_traced
        swaps = [r for r in tracer.select("reschedule") if r.name == "swap"]
        assert len(swaps) == len(result.swap_times)
        assert sorted(r.args["new_host"] for r in swaps) == \
            sorted(result.swapped_to)

    def test_swap_decisions_recorded(self, fig4_traced):
        tracer, result = fig4_traced
        decisions = [r for r in tracer.select("reschedule")
                     if r.name == "swap-decision"]
        assert len(decisions) >= len(result.swap_times)

    def test_trace_spans_sim_duration(self, fig4_traced):
        tracer, result = fig4_traced
        last = max(r.ts for r in tracer.records)
        assert last == pytest.approx(result.finished_at)


class TestDisabledTracerBehaviour:
    def test_disabled_tracer_changes_nothing(self):
        baseline = run_fig4(n_iterations=15)
        traced = run_fig4(n_iterations=15, tracer=Tracer(enabled=False))
        assert traced.finished_at == baseline.finished_at
        assert traced.stats["events_processed"] == \
            baseline.stats["events_processed"]

    def test_enabled_tracer_does_not_perturb_results(self):
        baseline = run_fig4(n_iterations=15)
        traced = run_fig4(n_iterations=15, tracer=Tracer())
        assert traced.finished_at == baseline.finished_at
        assert traced.stats["events_processed"] == \
            baseline.stats["events_processed"]
