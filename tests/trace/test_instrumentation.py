"""End-to-end instrumentation tests: real experiments, real hooks.

These run small fig3/fig4 scenarios with a tracer attached and check
that every instrumented layer emitted records consistent with the
experiment's own reported numbers.
"""

import numpy as np
import pytest

from repro.experiments.fig3_qr import run_fig3_point
from repro.experiments.fig4_swap import run_fig4
from repro.experiments.scheduler_bench import build_scheduler_bench_env
from repro.scheduler import HEURISTICS, REFERENCE_HEURISTICS
from repro.trace import Tracer, violation_timeline
from repro.trace.export import write_jsonl


@pytest.fixture(scope="module")
def fig3_traced():
    tracer = Tracer()
    point = run_fig3_point(8000, "reschedule", tracer=tracer)
    return tracer, point


@pytest.fixture(scope="module")
def fig4_traced():
    tracer = Tracer()
    result = run_fig4(n_iterations=120, tracer=tracer)
    return tracer, result


class TestFig3Instrumentation:
    def test_checkpoint_and_restore_spans_present(self, fig3_traced):
        tracer, point = fig3_traced
        names = [r.name for r in tracer.select("reschedule")]
        assert "checkpoint" in names
        assert "restore" in names

    def test_restore_follows_migration(self, fig3_traced):
        tracer, point = fig3_traced
        assert point.migrations >= 1
        restores = [r for r in tracer.select("reschedule")
                    if r.name == "restore"]
        # every migrated rank restores from the depot
        assert len(restores) >= point.migrations

    def test_violations_precede_migration_requests(self, fig3_traced):
        tracer, _point = fig3_traced
        contract = tracer.select("contract")
        violations = [r for r in contract if r.name == "violation"]
        requests = [r for r in contract if r.name == "migration-request"]
        assert violations and requests
        assert min(r.ts for r in violations) <= min(r.ts for r in requests)

    def test_violation_timeline_matches_records(self, fig3_traced):
        tracer, _point = fig3_traced
        timeline = violation_timeline(tracer)
        assert len(timeline) == len(
            [r for r in tracer.select("contract") if r.name == "violation"])
        assert all(v["kind"] in ("slow", "fast") for v in timeline)

    def test_checkpoint_spans_have_positive_duration_and_host(self,
                                                              fig3_traced):
        tracer, _point = fig3_traced
        for record in tracer.select("reschedule"):
            if record.name == "checkpoint":
                assert record.dur > 0
                assert record.args["host"].startswith(("utk.", "uiuc."))

    def test_network_and_kernel_layers_fire(self, fig3_traced):
        tracer, _point = fig3_traced
        network = {r.name for r in tracer.select("network")}
        assert "flow-add" in network
        assert "realloc" in network
        assert tracer.select("kernel")

    def test_meta_marker_identifies_run(self, fig3_traced):
        tracer, _point = fig3_traced
        (marker,) = tracer.select("meta")
        assert marker.args["experiment"] == "fig3"
        assert marker.args["mode"] == "reschedule"


class TestFig4Instrumentation:
    def test_swap_spans_match_swap_log(self, fig4_traced):
        tracer, result = fig4_traced
        swaps = [r for r in tracer.select("reschedule") if r.name == "swap"]
        assert len(swaps) == len(result.swap_times)
        assert sorted(r.args["new_host"] for r in swaps) == \
            sorted(result.swapped_to)

    def test_swap_decisions_recorded(self, fig4_traced):
        tracer, result = fig4_traced
        decisions = [r for r in tracer.select("reschedule")
                     if r.name == "swap-decision"]
        assert len(decisions) >= len(result.swap_times)

    def test_trace_spans_sim_duration(self, fig4_traced):
        tracer, result = fig4_traced
        last = max(r.ts for r in tracer.records)
        assert last == pytest.approx(result.finished_at)


class TestSchedulerTraceParity:
    """The fast engine must emit byte-identical ``scheduler`` spans to
    the reference oracle — tracing is part of the equivalence contract,
    not just the placements."""

    @staticmethod
    def _export(tmp_path, engine_table, name, label):
        env = build_scheduler_bench_env(n_tasks=24, n_hosts=8)
        workflow, matrix, nws = env
        tracer = Tracer(categories=["scheduler"]).bind(nws.sim)
        if name == "random":
            engine_table[name](workflow, matrix, nws,
                               rng=np.random.default_rng(7))
        else:
            engine_table[name](workflow, matrix, nws)
        path = tmp_path / f"{label}-{name}.jsonl"
        write_jsonl(tracer, str(path))
        return path.read_bytes()

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_exports_are_byte_identical(self, tmp_path, name):
        fast = self._export(tmp_path, HEURISTICS, name, "fast")
        reference = self._export(tmp_path, REFERENCE_HEURISTICS, name,
                                 "reference")
        assert fast == reference
        assert fast  # spans actually emitted, not two empty files

    def test_spans_cover_every_task(self, tmp_path):
        env = build_scheduler_bench_env(n_tasks=16, n_hosts=8)
        workflow, matrix, nws = env
        tracer = Tracer(categories=["scheduler"]).bind(nws.sim)
        HEURISTICS["min-min"](workflow, matrix, nws)
        spans = [r for r in tracer.select("scheduler")
                 if r.name.startswith("task:")]
        assert len(spans) == len(matrix.tasks)
        (summary,) = [r for r in tracer.select("scheduler")
                      if r.name.startswith("heuristic:")]
        assert summary.args["tasks"] == len(matrix.tasks)


class TestDisabledTracerBehaviour:
    def test_disabled_tracer_changes_nothing(self):
        baseline = run_fig4(n_iterations=15)
        traced = run_fig4(n_iterations=15, tracer=Tracer(enabled=False))
        assert traced.finished_at == baseline.finished_at
        assert traced.stats["events_processed"] == \
            baseline.stats["events_processed"]

    def test_enabled_tracer_does_not_perturb_results(self):
        baseline = run_fig4(n_iterations=15)
        traced = run_fig4(n_iterations=15, tracer=Tracer())
        assert traced.finished_at == baseline.finished_at
        assert traced.stats["events_processed"] == \
            baseline.stats["events_processed"]
