"""Edge-case tests for the shared experiment formatting helpers."""

import pytest

from repro.experiments.common import (
    _cell,
    bar_chart,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_empty_rows_renders_header_only(self):
        text = format_table(["a", "bb"], [])
        lines = text.splitlines()
        assert lines[0] == "a | bb"
        assert set(lines[1]) == {"-", "+"}
        assert len(lines) == 2

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_mismatched_row_width_raises(self):
        with pytest.raises(ValueError, match="row width does not match"):
            format_table(["a", "b"], [[1, 2], [3]])

    def test_columns_pad_to_widest_cell(self):
        text = format_table(["h"], [["wide-cell"], ["x"]])
        header, sep, wide, narrow = text.splitlines()
        assert len(header) == len(sep) == len(wide) == len(narrow)


class TestCellFormatting:
    def test_float_zero_renders_bare(self):
        assert _cell(0.0) == "0"

    def test_thousands_drop_decimals(self):
        assert _cell(1000.0) == "1000"
        assert _cell(12345.6) == "12346"
        assert _cell(-2000.4) == "-2000"

    def test_unit_range_keeps_one_decimal(self):
        assert _cell(1.0) == "1.0"
        assert _cell(999.94) == "999.9"
        assert _cell(-1.25) == "-1.2"

    def test_sub_unit_keeps_three_decimals(self):
        assert _cell(0.5) == "0.500"
        assert _cell(0.0004) == "0.000"
        assert _cell(-0.999) == "-0.999"

    def test_non_floats_pass_through_str(self):
        assert _cell(7) == "7"
        assert _cell("name") == "name"


class TestFormatSeries:
    def test_short_series_not_downsampled(self):
        points = [(float(i), i) for i in range(5)]
        text = format_series(points, "t", "y")
        assert len(text.splitlines()) == 2 + 5  # header + sep + rows

    def test_long_series_downsampled_keeping_last_point(self):
        points = [(float(i), i) for i in range(200)]
        text = format_series(points, "t", "y", max_points=40)
        lines = text.splitlines()
        assert len(lines) - 2 <= 41  # stride sample + re-appended last
        assert lines[-1].startswith("199")

    def test_last_point_not_duplicated_when_stride_hits_it(self):
        # 80 points, stride 2 -> samples end exactly on index 78, then
        # the true last point (79) is appended once.
        points = [(float(i), i) for i in range(80)]
        text = format_series(points, "t", "y", max_points=40)
        rows = text.splitlines()[2:]
        assert sum(1 for r in rows if r.startswith("79")) == 1

    def test_empty_series(self):
        text = format_series([], "t", "y")
        assert len(text.splitlines()) == 2


class TestBarChart:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="must align"):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart_is_title_only(self):
        assert bar_chart([], [], title="T") == "T"

    def test_zero_peak_draws_no_bars(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in text

    def test_peak_bar_fills_width(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert "#" * 10 in lines[1]
        assert "#" * 5 in lines[0]
