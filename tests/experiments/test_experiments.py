"""Integration tests over the experiment drivers.

These check the *shapes* the paper reports (see EXPERIMENTS.md), at
reduced problem sizes so the suite stays fast; the benchmarks under
``benchmarks/`` regenerate the full-size figures.
"""

import pytest

from repro.experiments import (
    run_eman_demo,
    run_fig3_point,
    run_fig3,
    run_fig4,
)
from repro.experiments.common import bar_chart, format_series, format_table


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", 0.001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_downsamples(self):
        text = format_series([(float(i), i) for i in range(200)],
                             "t", "i", max_points=10)
        assert len(text.splitlines()) < 20

    def test_bar_chart(self):
        text = bar_chart(["x", "y"], [1.0, 2.0])
        assert text.splitlines()[1].count("#") > text.splitlines()[0].count("#")
        with pytest.raises(ValueError):
            bar_chart(["x"], [1.0, 2.0])


class TestFig3:
    def test_point_validation(self):
        with pytest.raises(ValueError):
            run_fig3_point(4000, "sideways")

    def test_small_sweep_shapes(self):
        result = run_fig3(sizes=(4000, 9000), nb=200, load_at=120.0)
        # small problem: rescheduling does not pay (or is a wash)
        stay4, move4 = result.pair(4000)
        # large problem: rescheduling wins clearly
        stay9, move9 = result.pair(9000)
        assert move9.total_seconds < stay9.total_seconds
        assert move9.migrations == 1
        # checkpoint read dominates write wherever a migration happened
        assert move9.phase("checkpoint_read_2") > \
            5 * move9.phase("checkpoint_write_1")
        # tables render
        assert "Figure 3" in result.to_table()
        assert "decisions" in result.decision_table()

    def test_no_reschedule_never_migrates(self):
        point = run_fig3_point(5000, "no-reschedule", load_at=60.0)
        assert point.migrations == 0
        assert point.phase("checkpoint_read_2") == 0.0


class TestFig4:
    def test_progress_dips_and_recovers(self):
        result = run_fig4(n_iterations=80)
        pre = result.rate_between(10.0, 80.0)
        swapped = result.all_swaps_done_by()
        assert swapped is not None and swapped < 150.0  # paper: by ~150 s
        loaded = result.rate_between(80.0, swapped)
        post = result.rate_between(swapped + 5.0, result.finished_at)
        assert loaded < pre * 0.5  # visible dip
        assert post > loaded * 2  # visible recovery
        assert post > pre * 0.6  # back near the original slope

    def test_gang_policy_moves_all_three_to_uiuc(self):
        result = run_fig4(n_iterations=60)
        assert len(result.swap_times) == 3
        assert all(name.startswith("uiuc.") for name in result.swapped_to)

    def test_swapping_beats_baseline(self):
        swap = run_fig4(n_iterations=60)
        base = run_fig4(n_iterations=60, with_swapping=False)
        assert swap.finished_at < base.finished_at
        assert base.swap_times == []

    def test_series_renders(self):
        result = run_fig4(n_iterations=30)
        assert "Figure 4" in result.to_series()


class TestEman:
    def test_demo_shapes(self):
        result = run_eman_demo(n_random=3)
        # informed beats random by a wide margin on a heterogeneous grid
        informed = min(result.estimated[name]
                       for name in ("min-min", "max-min", "sufferage"))
        assert informed < result.estimated["random(mean)"]
        assert informed <= result.estimated["fifo"] + 1e-9
        # the chosen schedule executes and uses both ISAs
        assert result.isas_used == ["ia32", "ia64"]
        assert result.measured_makespan == pytest.approx(
            result.estimated[result.chosen_heuristic], rel=0.5)
        assert "EMAN" in result.to_table()
