"""The repo-wide --seed convention (DESIGN.md §9.5).

Every experiment driver accepts ``seed`` (default 0), stamps it into
its ``meta`` trace marker, and two same-seed runs produce identical
results.  The CLI parser side (every subcommand takes ``--seed``) is
pinned in ``tests/test_cli.py``.
"""

from repro.experiments.fig3_qr import run_fig3
from repro.experiments.fig4_swap import run_fig4
from repro.experiments.metasched_stream import run_metasched
from repro.experiments.opportunistic import run_opportunistic
from repro.trace import Tracer


def meta_args(tracer):
    (marker,) = [r for r in tracer.select("meta") if r.name == "run"]
    return marker.args


class TestSeedRecordedInMetaTrace:
    def test_fig3(self):
        tracer = Tracer(categories=["meta"])
        run_fig3(sizes=(4000,), with_decisions=False, seed=9,
                 tracer=tracer)
        assert all(r.args["seed"] == 9 for r in tracer.select("meta"))

    def test_fig4(self):
        tracer = Tracer(categories=["meta"])
        run_fig4(n_iterations=5, with_swapping=False, seed=9,
                 tracer=tracer)
        assert meta_args(tracer)["seed"] == 9

    def test_opportunistic(self):
        tracer = Tracer(categories=["meta"])
        run_opportunistic(enable=False, seed=9, tracer=tracer)
        assert meta_args(tracer)["seed"] == 9

    def test_metasched(self):
        tracer = Tracer(categories=["meta"])
        run_metasched(users=2, arrival_rate=0.01, duration=300.0, seed=9,
                      max_jobs=3, tracer=tracer)
        assert meta_args(tracer)["seed"] == 9


class TestSameSeedSameResult:
    def test_fig3(self):
        a = run_fig3(sizes=(4000,), with_decisions=False, seed=4)
        b = run_fig3(sizes=(4000,), with_decisions=False, seed=4)
        assert [(p.n, p.mode, p.total_seconds, p.phases)
                for p in a.points] == \
               [(p.n, p.mode, p.total_seconds, p.phases)
                for p in b.points]

    def test_fig4(self):
        a = run_fig4(n_iterations=10, with_swapping=False, seed=4)
        b = run_fig4(n_iterations=10, with_swapping=False, seed=4)
        assert a.finished_at == b.finished_at
        assert [(p.time, p.iteration) for p in a.progress] == \
            [(p.time, p.iteration) for p in b.progress]

    def test_metasched(self):
        kwargs = dict(users=2, arrival_rate=0.02, duration=600.0,
                      seed=4, max_jobs=5)
        assert run_metasched(**kwargs).to_json() == \
            run_metasched(**kwargs).to_json()
