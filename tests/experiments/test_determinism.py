"""Same-seed determinism regressions for hazards simlint surfaced.

PR 4's linter flagged the EMAN demo for iterating the used-resource
*set* when deriving ``isas_used`` (SL003).  The end value happened to
be order-insensitive, but the pattern is exactly how nondeterministic
placement creeps in, so the iteration is now sorted and this module
pins the whole experiment down: two same-seed runs must be
byte-identical under the trace exporter and clean under ``repro trace
diff`` — the same bar the CI trace-smoke job applies to fig4.
"""

from repro.experiments.eman_demo import run_eman_demo
from repro.trace import Tracer, first_divergence, write_chrome


def run_once():
    tracer = Tracer()
    result = run_eman_demo(tracer=tracer)
    return result, tracer


class TestEmanSameSeed:
    def test_results_identical(self):
        a, _ = run_once()
        b, _ = run_once()
        assert a.estimated == b.estimated
        assert a.chosen_heuristic == b.chosen_heuristic
        assert a.measured_makespan == b.measured_makespan
        assert a.isas_used == b.isas_used
        assert a.resources_used == b.resources_used

    def test_isas_used_is_sorted_and_covers_both_isas(self):
        result, _ = run_once()
        assert result.isas_used == sorted(result.isas_used)
        assert result.isas_used == ["ia32", "ia64"]

    def test_traces_have_no_divergence(self):
        _, tracer_a = run_once()
        _, tracer_b = run_once()
        assert len(tracer_a) == len(tracer_b) > 0
        assert first_divergence(tracer_a, tracer_b) is None

    def test_trace_exports_byte_identical(self, tmp_path):
        paths = []
        for label in ("a", "b"):
            _, tracer = run_once()
            path = tmp_path / f"eman-{label}.trace.json"
            write_chrome(tracer, str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
