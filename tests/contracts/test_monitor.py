"""Tests for contracts, Autopilot plumbing, and the contract monitor."""

import pytest

from repro.sim import Simulator
from repro.contracts import (
    AutopilotManager,
    ContractMonitor,
    PerformanceContract,
)


def contract(predicted=10.0, upper=1.5, lower=0.5):
    return PerformanceContract(predicted_fn=lambda phase: predicted,
                               upper=upper, lower=lower)


class TestPerformanceContract:
    def test_ratio(self):
        c = contract(predicted=10.0)
        assert c.ratio(0, 15.0) == pytest.approx(1.5)

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            contract(upper=0.5, lower=0.5)
        with pytest.raises(ValueError):
            contract(upper=1.5, lower=0.0)

    def test_nonpositive_prediction_rejected(self):
        c = PerformanceContract(predicted_fn=lambda p: 0.0)
        with pytest.raises(ValueError):
            c.ratio(0, 1.0)

    def test_negative_measurement_rejected(self):
        c = contract()
        with pytest.raises(ValueError):
            c.ratio(0, -1.0)

    def test_update_terms(self):
        c = contract(predicted=10.0)
        c.update_terms(lambda p: 20.0)
        assert c.ratio(0, 20.0) == pytest.approx(1.0)


class TestAutopilot:
    def test_sensor_publish_and_subscribe(self):
        sim = Simulator()
        manager = AutopilotManager(sim)
        sensor = manager.register_sensor("iter-time")
        seen = []
        manager.subscribe("iter-time", lambda r: seen.append(r.value))
        sensor.publish(3.5, rank=0)
        assert seen == [3.5]
        assert manager.history("iter-time")[0].attr("rank") == 0

    def test_duplicate_sensor_rejected(self):
        sim = Simulator()
        manager = AutopilotManager(sim)
        manager.register_sensor("s")
        with pytest.raises(ValueError):
            manager.register_sensor("s")

    def test_actuator_roundtrip(self):
        sim = Simulator()
        manager = AutopilotManager(sim)
        fired = []
        manager.register_actuator("migrate", lambda why: fired.append(why))
        manager.actuate("migrate", "load-spike")
        assert fired == ["load-spike"]

    def test_unknown_lookups_raise(self):
        sim = Simulator()
        manager = AutopilotManager(sim)
        with pytest.raises(KeyError):
            manager.sensor("ghost")
        with pytest.raises(KeyError):
            manager.actuate("ghost")


class TestContractMonitor:
    def test_no_violation_within_band(self):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract())
        for phase in range(10):
            monitor.report_phase(phase, 11.0)  # ratio 1.1
        assert monitor.requests == []
        assert monitor.contract.violations == []

    def test_single_spike_not_confirmed(self):
        """One bad phase must not trigger migration: the average of the
        recent ratios stays in band."""
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(), window=5)
        for phase in range(4):
            monitor.report_phase(phase, 10.0)
        monitor.report_phase(4, 25.0)  # ratio 2.5 but avg 1.3
        assert monitor.requests == []

    def test_sustained_slowdown_confirmed_and_requested(self):
        sim = Simulator()
        calls = []
        monitor = ContractMonitor(sim, contract(), window=3,
                                  rescheduler=lambda req: calls.append(req) or True)
        for phase in range(5):
            monitor.report_phase(phase, 30.0)  # ratio 3.0
        assert len(calls) >= 1
        assert calls[0].average_ratio > 1.5
        assert 0.0 < calls[0].severity <= 1.0

    def test_declined_migration_raises_tolerance(self):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(), window=3,
                                  rescheduler=lambda req: False)
        for phase in range(3):
            monitor.report_phase(phase, 30.0)
        assert monitor.upper > 1.5
        assert monitor.limit_adjustments
        # With the adjusted limit, the same ratios no longer re-fire.
        n_requests = len(monitor.requests)
        monitor.report_phase(3, 30.0)
        assert len(monitor.requests) == n_requests

    def test_accepted_migration_does_not_adjust(self):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(), window=1,
                                  rescheduler=lambda req: True)
        monitor.report_phase(0, 30.0)
        assert monitor.upper == 1.5
        assert monitor.limit_adjustments == []

    def test_fast_run_lowers_limits(self):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(), window=2)
        for phase in range(4):
            monitor.report_phase(phase, 2.0)  # ratio 0.2, well below 0.5
        assert monitor.lower < 0.5
        assert monitor.upper < 1.5
        assert any(v.kind == "fast" for v in monitor.contract.violations)

    def test_suspend_resume(self):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(), window=1,
                                  rescheduler=lambda req: True)
        monitor.suspend()
        monitor.report_phase(0, 100.0)
        assert monitor.requests == []
        monitor.resume()
        monitor.report_phase(1, 100.0)
        assert len(monitor.requests) == 1

    def test_resume_clears_history(self):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(), window=5)
        for phase in range(3):
            monitor.report_phase(phase, 30.0)
        monitor.suspend()
        monitor.resume(clear_history=True)
        assert monitor.ratios == []

    def test_constructor_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ContractMonitor(sim, contract(), window=0)
        with pytest.raises(ValueError):
            ContractMonitor(sim, contract(), adjust_margin=0.5)

    def test_attach_job_reports_slowest_rank(self):
        """Bulk-synchronous phases are as slow as the slowest rank."""
        from repro.microgrid import Architecture, Host, Topology
        from repro.mpi import MpiJob
        sim = Simulator()
        topo = Topology(sim)
        arch = Architecture(name="t", mflops=100.0)
        hosts = []
        topo.add_node("sw")
        for i in range(2):
            h = Host(sim, f"h{i}", arch)
            topo.attach_host(h)
            topo.add_link(h.name, "sw", bandwidth=1e8, latency=1e-4)
            hosts.append(h)
        job = MpiJob(sim, topo, hosts)
        c = PerformanceContract(predicted_fn=lambda p: 1.0)
        monitor = ContractMonitor(sim, c, window=1)
        monitor.attach_job(job)

        def body(ctx):
            # rank 1 takes 3x longer each iteration
            for it in range(3):
                start = ctx.sim.now
                yield ctx.compute(100.0 * (1 + 2 * ctx.rank))
                ctx.report_iteration(it, ctx.sim.now - start)

        done = job.launch(body)
        sim.run(stop_event=done)
        # each phase's recorded ratio is the slowest rank's 3.0
        assert all(r == pytest.approx(3.0) for r in monitor.ratios)


class FakeJob:
    """Stand-in for MpiJob's iteration-sensor interface."""

    def __init__(self, size):
        self.size = size
        self._callbacks = []

    def on_iteration(self, callback):
        self._callbacks.append(callback)

    def report(self, rank, iteration, seconds):
        for callback in self._callbacks:
            callback(rank, iteration, seconds)


class TestAttachJobHardening:
    """Sensor-stream hardening: checkpoint restarts replay iterations,
    so ranks may re-report phases the monitor already evaluated."""

    def attach(self, size=2):
        sim = Simulator()
        monitor = ContractMonitor(sim, contract(predicted=1.0), window=1)
        job = FakeJob(size=size)
        monitor.attach_job(job)
        return monitor, job

    def test_duplicate_rank_report_cannot_complete_a_phase(self):
        monitor, job = self.attach(size=2)
        job.report(0, 0, 1.0)
        job.report(0, 0, 5.0)  # same rank again: must not count twice
        assert monitor.ratios == []
        job.report(1, 0, 3.0)
        assert monitor.ratios == [pytest.approx(3.0)]

    def test_duplicate_report_does_not_update_worst(self):
        monitor, job = self.attach(size=2)
        job.report(0, 0, 1.0)
        job.report(0, 0, 99.0)  # stale duplicate with a bogus time
        job.report(1, 0, 2.0)
        assert monitor.ratios == [pytest.approx(2.0)]

    def test_stale_rereport_of_evaluated_phase_ignored(self):
        monitor, job = self.attach(size=2)
        job.report(0, 0, 1.0)
        job.report(1, 0, 1.0)
        assert len(monitor.ratios) == 1
        # an SRS restart replays phase 0 from both ranks
        job.report(0, 0, 9.0)
        job.report(1, 0, 9.0)
        assert len(monitor.ratios) == 1

    def test_evaluated_phases_are_popped(self):
        """The pending map must stay bounded over a long run."""
        monitor, job = self.attach(size=1)
        for phase in range(50):
            job.report(0, phase, 1.0)
        assert len(monitor.ratios) == 50
        # nothing is left pending: a fresh rank-0 report for any old
        # phase is recognized as stale, not a new partial phase
        job.report(0, 10, 7.0)
        assert len(monitor.ratios) == 50
