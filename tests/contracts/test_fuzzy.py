"""Tests for the fuzzy inference engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import (
    FuzzyEngine,
    FuzzyRule,
    FuzzyVariable,
    Trapezoid,
    contract_violation_engine,
)


class TestTrapezoid:
    def test_plateau_is_one(self):
        mf = Trapezoid(0, 1, 2, 3)
        assert mf(1.0) == 1.0
        assert mf(1.5) == 1.0
        assert mf(2.0) == 1.0

    def test_edges_interpolate(self):
        mf = Trapezoid(0, 1, 2, 3)
        assert mf(0.5) == pytest.approx(0.5)
        assert mf(2.5) == pytest.approx(0.5)

    def test_outside_is_zero(self):
        mf = Trapezoid(0, 1, 2, 3)
        assert mf(-0.1) == 0.0
        assert mf(3.1) == 0.0

    def test_triangle_degenerate(self):
        mf = Trapezoid(0, 1, 1, 2)
        assert mf(1.0) == 1.0
        assert mf(0.5) == pytest.approx(0.5)

    def test_crisp_edge_degenerate(self):
        mf = Trapezoid(1, 1, 2, 2)
        assert mf(1.0) == 1.0
        assert mf(2.0) == 1.0
        assert mf(0.999) == 0.0

    def test_unordered_corners_rejected(self):
        with pytest.raises(ValueError):
            Trapezoid(3, 2, 1, 0)


class TestEngine:
    def make_engine(self):
        load = FuzzyVariable("load", {
            "low": Trapezoid(0, 0, 0.3, 0.5),
            "high": Trapezoid(0.3, 0.5, 1.0, 1.0),
        })
        rules = [
            FuzzyRule((("load", "low"),), 0.0),
            FuzzyRule((("load", "high"),), 1.0),
        ]
        return FuzzyEngine([load], rules)

    def test_extremes(self):
        engine = self.make_engine()
        assert engine.infer(load=0.1) == pytest.approx(0.0)
        assert engine.infer(load=0.9) == pytest.approx(1.0)

    def test_interpolation_in_overlap(self):
        engine = self.make_engine()
        mid = engine.infer(load=0.4)
        assert 0.0 < mid < 1.0

    def test_outside_all_sets_returns_zero(self):
        load = FuzzyVariable("load", {"band": Trapezoid(2, 3, 4, 5)})
        engine = FuzzyEngine([load], [FuzzyRule((("load", "band"),), 1.0)])
        assert engine.infer(load=0.0) == 0.0

    def test_missing_input_raises(self):
        engine = self.make_engine()
        with pytest.raises(KeyError):
            engine.infer(wrong_name=1.0)

    def test_unknown_set_raises(self):
        load = FuzzyVariable("load", {"low": Trapezoid(0, 0, 1, 1)})
        engine = FuzzyEngine([load], [FuzzyRule((("load", "ghost"),), 1.0)])
        with pytest.raises(KeyError):
            engine.infer(load=0.5)

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            FuzzyEngine([], [])

    def test_conjunction_uses_min(self):
        a = FuzzyVariable("a", {"s": Trapezoid(0, 0, 1, 1)})
        b = FuzzyVariable("b", {"s": Trapezoid(0, 0.5, 1, 1)})
        engine = FuzzyEngine([a, b],
                             [FuzzyRule((("a", "s"), ("b", "s")), 1.0)])
        acts = engine.activations(a=0.5, b=0.25)
        assert acts[0][1] == pytest.approx(0.5)


class TestViolationEngine:
    def test_nominal_ratio_no_violation(self):
        engine = contract_violation_engine()
        assert engine.infer(ratio=1.0) == pytest.approx(0.0)

    def test_severe_slowdown_full_violation(self):
        engine = contract_violation_engine()
        assert engine.infer(ratio=5.0) == pytest.approx(1.0)

    def test_moderate_slowdown_graded(self):
        engine = contract_violation_engine()
        v = engine.infer(ratio=2.0)
        assert 0.3 < v < 0.9

    def test_monotone_in_ratio(self):
        engine = contract_violation_engine()
        ratios = [0.5, 1.0, 1.4, 1.8, 2.5, 3.0, 4.0, 6.0]
        severities = [engine.infer(ratio=r) for r in ratios]
        assert all(b >= a - 1e-9 for a, b in zip(severities, severities[1:]))


@settings(max_examples=50, deadline=None)
@given(ratio=st.floats(min_value=0.0, max_value=100.0))
def test_property_violation_degree_bounded(ratio):
    engine = contract_violation_engine()
    v = engine.infer(ratio=ratio)
    assert 0.0 <= v <= 1.0
