"""Tests for the text-mode Contract Viewer."""


from repro.sim import Simulator
from repro.contracts import (
    ContractMonitor,
    ContractViewer,
    PerformanceContract,
)


def make_monitor(sim, rescheduler=None, window=3):
    contract = PerformanceContract(predicted_fn=lambda p: 10.0)
    return ContractMonitor(sim, contract, window=window,
                           rescheduler=rescheduler)


class TestContractViewer:
    def test_empty_viewer_renders_placeholder(self):
        sim = Simulator()
        viewer = ContractViewer(make_monitor(sim))
        assert "no contract activity" in viewer.render()

    def test_records_each_phase(self):
        sim = Simulator()
        monitor = make_monitor(sim)
        viewer = ContractViewer(monitor)
        for phase in range(5):
            monitor.report_phase(phase, 11.0)
        assert viewer.n_samples == 5
        text = viewer.render()
        assert "5 phases" in text
        assert text.count("phase ") == 5

    def test_in_band_glyph(self):
        sim = Simulator()
        monitor = make_monitor(sim)
        viewer = ContractViewer(monitor)
        monitor.report_phase(0, 10.0)  # ratio exactly 1.0
        line = viewer.render().splitlines()[2]
        assert "*" in line and "!" not in line

    def test_violation_glyph_and_request_note(self):
        sim = Simulator()
        calls = []
        monitor = make_monitor(sim, rescheduler=lambda r: calls.append(r)
                               or True, window=1)
        viewer = ContractViewer(monitor)
        monitor.report_phase(0, 40.0)  # ratio 4.0, instant confirm
        text = viewer.render()
        assert "!" in text
        assert "migration requested" in text
        assert "1 migration request(s)" in text

    def test_below_band_glyph(self):
        sim = Simulator()
        monitor = make_monitor(sim, window=1)
        viewer = ContractViewer(monitor)
        monitor.report_phase(0, 2.0)  # ratio 0.2 < lower 0.5
        assert "v" in viewer.render()

    def test_band_edges_rendered(self):
        sim = Simulator()
        monitor = make_monitor(sim)
        viewer = ContractViewer(monitor)
        monitor.report_phase(0, 10.0)
        line = viewer.render().splitlines()[2]
        assert "[" in line and "]" in line
        assert line.index("[") < line.index("]")

    def test_suspended_phases_not_recorded(self):
        sim = Simulator()
        monitor = make_monitor(sim)
        viewer = ContractViewer(monitor)
        monitor.suspend()
        monitor.report_phase(0, 50.0)
        assert viewer.n_samples == 0

    def test_tolerance_adjustments_counted(self):
        sim = Simulator()
        monitor = make_monitor(sim, rescheduler=lambda r: False, window=1)
        viewer = ContractViewer(monitor)
        monitor.report_phase(0, 40.0)  # declined -> limits adjusted
        assert "tolerance adjustment" in viewer.render()
        assert monitor.limit_adjustments

    def test_extreme_ratios_clamped_into_chart(self):
        sim = Simulator()
        monitor = make_monitor(sim, window=1, rescheduler=lambda r: True)
        viewer = ContractViewer(monitor)
        monitor.report_phase(0, 1000.0)
        text = viewer.render(width=40)
        for line in text.splitlines()[2:]:
            bar = line.split("|")[1]
            assert len(bar) == 40
