"""Unit tests for the cost/benefit rescheduler."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.contracts import MigrationRequest
from repro.rescheduling import MigrationEvaluation, Rescheduler


class FakeApp:
    """A scriptable MigratableApp for unit-testing decisions."""

    def __init__(self, sim, name="fake", remaining_current=100.0,
                 remaining_new=40.0, cost=10.0):
        self.sim = sim
        self.name = name
        self.remaining = {"current": remaining_current, "new": remaining_new}
        self.cost = cost
        self.migrated_to = None
        self._finished = None

    def current_hosts(self):
        return ["utk.n0", "utk.n1"]

    def propose_hosts(self, exclude=()):
        return ["uiuc.n0", "uiuc.n1"]

    def predicted_remaining_seconds(self, host_names):
        return (self.remaining["current"]
                if host_names[0].startswith("utk.")
                else self.remaining["new"])

    def migration_cost_estimate(self, new_hosts):
        return self.cost

    def migrate(self, new_hosts):
        self.migrated_to = list(new_hosts)
        ev = self.sim.event()
        self.sim.call_after(1.0, lambda: ev.succeed(new_hosts))
        return ev

    @property
    def finished(self):
        return self._finished


def env():
    sim = Simulator()
    grid = fig3_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, gis, nws


def request(sim):
    return MigrationRequest(time=sim.now, phase=0, ratio=3.0,
                            average_ratio=3.0, severity=0.8)


class TestEvaluation:
    def test_benefit_math(self):
        evaluation = MigrationEvaluation(
            time=0.0, current_hosts=("a",), new_hosts=("b",),
            remaining_current=100.0, remaining_new=40.0,
            migration_cost=25.0, app_cost_estimate=25.0)
        assert evaluation.benefit == pytest.approx(35.0)
        assert evaluation.profitable

    def test_unprofitable(self):
        evaluation = MigrationEvaluation(
            time=0.0, current_hosts=("a",), new_hosts=("b",),
            remaining_current=50.0, remaining_new=40.0,
            migration_cost=25.0, app_cost_estimate=25.0)
        assert evaluation.benefit == pytest.approx(-15.0)
        assert not evaluation.profitable

    def test_worst_case_overrides_app_estimate(self):
        sim, gis, nws = env()
        app = FakeApp(sim, cost=10.0)
        resched = Rescheduler(sim, gis, nws,
                              worst_case_migration_seconds=900.0)
        evaluation = resched.evaluate(app)
        assert evaluation.migration_cost == 900.0
        assert evaluation.app_cost_estimate == 10.0

    def test_none_worst_case_uses_app_estimate(self):
        sim, gis, nws = env()
        app = FakeApp(sim, cost=10.0)
        resched = Rescheduler(sim, gis, nws,
                              worst_case_migration_seconds=None)
        assert resched.evaluate(app).migration_cost == 10.0

    def test_no_candidates_returns_none(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        app.propose_hosts = lambda exclude=(): (_ for _ in ()).throw(
            RuntimeError("nothing"))
        resched = Rescheduler(sim, gis, nws)
        assert resched.evaluate(app) is None

    def test_same_hosts_returns_none(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        app.propose_hosts = lambda exclude=(): app.current_hosts()
        resched = Rescheduler(sim, gis, nws)
        assert resched.evaluate(app) is None


class TestModes:
    def test_invalid_mode_rejected(self):
        sim, gis, nws = env()
        with pytest.raises(ValueError):
            Rescheduler(sim, gis, nws, mode="sideways")

    def test_default_mode_migrates_when_profitable(self):
        sim, gis, nws = env()
        app = FakeApp(sim, remaining_current=100.0, remaining_new=40.0,
                      cost=10.0)
        resched = Rescheduler(sim, gis, nws, mode="default",
                              worst_case_migration_seconds=None)
        assert resched.handle_request(app, request(sim)) is True
        assert app.migrated_to == ["uiuc.n0", "uiuc.n1"]

    def test_default_mode_declines_when_unprofitable(self):
        sim, gis, nws = env()
        app = FakeApp(sim, remaining_current=45.0, remaining_new=40.0,
                      cost=10.0)
        resched = Rescheduler(sim, gis, nws, mode="default",
                              worst_case_migration_seconds=None)
        assert resched.handle_request(app, request(sim)) is False
        assert app.migrated_to is None
        assert resched.decisions[-1].migrated is False

    def test_force_stay_never_migrates(self):
        sim, gis, nws = env()
        app = FakeApp(sim, remaining_current=1e6, remaining_new=1.0)
        resched = Rescheduler(sim, gis, nws, mode="force-stay",
                              worst_case_migration_seconds=None)
        assert resched.handle_request(app, request(sim)) is False

    def test_force_migrate_always_migrates(self):
        sim, gis, nws = env()
        app = FakeApp(sim, remaining_current=1.0, remaining_new=1e6)
        resched = Rescheduler(sim, gis, nws, mode="force-migrate")
        assert resched.handle_request(app, request(sim)) is True

    def test_min_benefit_threshold(self):
        sim, gis, nws = env()
        app = FakeApp(sim, remaining_current=100.0, remaining_new=40.0,
                      cost=10.0)  # benefit 50
        resched = Rescheduler(sim, gis, nws, mode="default",
                              worst_case_migration_seconds=None,
                              min_benefit_seconds=60.0)
        assert resched.handle_request(app, request(sim)) is False

    def test_inflight_migration_not_duplicated(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        resched = Rescheduler(sim, gis, nws, mode="force-migrate")
        assert resched.handle_request(app, request(sim)) is True
        n_decisions = len(resched.decisions)
        # second request while migrating: acknowledged, not re-decided
        assert resched.handle_request(app, request(sim)) is True
        assert len(resched.decisions) == n_decisions

    def test_decision_records_trigger(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        resched = Rescheduler(sim, gis, nws, mode="default",
                              worst_case_migration_seconds=None)
        resched.handle_request(app, request(sim))
        assert resched.decisions[0].trigger == "request"
        assert resched.decisions[0].app == "fake"


class TestFailureHardening:
    def test_constructor_validation(self):
        sim, gis, nws = env()
        with pytest.raises(ValueError):
            Rescheduler(sim, gis, nws, migration_timeout_seconds=0.0)
        with pytest.raises(ValueError):
            Rescheduler(sim, gis, nws, blacklist_seconds=-1.0)

    def test_sync_migrate_exception_abandons_and_blacklists(self):
        """app.migrate() raising must not leave the app in _migrating."""
        sim, gis, nws = env()
        app = FakeApp(sim)

        def bad_migrate(new_hosts):
            raise RuntimeError("binder exploded")

        app.migrate = bad_migrate
        resched = Rescheduler(sim, gis, nws, mode="force-migrate")
        assert resched.handle_request(app, request(sim)) is False
        assert resched._migrating == set()
        assert resched.aborted_migrations == 1
        assert resched.decisions[-1].trigger == "migration-failed"
        assert resched.decisions[-1].migrated is False
        assert resched.blacklisted_hosts() == ["uiuc.n0", "uiuc.n1"]

    def test_failed_migration_event_abandons(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        failing = sim.event()
        app.migrate = lambda new_hosts: failing
        resched = Rescheduler(sim, gis, nws, mode="force-migrate")
        assert resched.handle_request(app, request(sim)) is True
        assert "fake" in resched._migrating
        sim.call_after(1.0, lambda: failing.fail(RuntimeError("host died")))
        sim.run(until=5.0)
        assert resched._migrating == set()
        assert resched.aborted_migrations == 1
        assert resched.decisions[-1].trigger == "migration-failed"
        # a later request can start a fresh attempt
        app.migrate = FakeApp.migrate.__get__(app)
        assert resched.handle_request(app, request(sim)) is True

    def test_migration_timeout_abandons_and_blacklists(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        stuck = sim.event()  # the migration event is simply lost
        app.migrate = lambda new_hosts: stuck
        resched = Rescheduler(sim, gis, nws, mode="force-migrate",
                              migration_timeout_seconds=10.0)
        assert resched.handle_request(app, request(sim)) is True
        sim.run(until=20.0)
        assert resched._migrating == set()
        assert resched.aborted_migrations == 1
        assert resched.decisions[-1].trigger == "migration-timeout"
        assert resched.blacklisted_hosts() == ["uiuc.n0", "uiuc.n1"]

    def test_late_event_after_timeout_is_ignored(self):
        """The token guard: an event surfacing after the timeout
        abandoned its attempt must not corrupt newer state."""
        sim, gis, nws = env()
        app = FakeApp(sim)
        stuck = sim.event()
        app.migrate = lambda new_hosts: stuck
        resched = Rescheduler(sim, gis, nws, mode="force-migrate",
                              migration_timeout_seconds=10.0)
        assert resched.handle_request(app, request(sim)) is True
        sim.call_after(30.0, lambda: stuck.succeed(["uiuc.n0"]))
        sim.run(until=40.0)
        assert resched.aborted_migrations == 1
        assert resched._migrating == set()

    def test_timely_migration_cancels_timeout(self):
        sim, gis, nws = env()
        app = FakeApp(sim)  # FakeApp migrations succeed after 1 s
        resched = Rescheduler(sim, gis, nws, mode="force-migrate",
                              migration_timeout_seconds=10.0)
        assert resched.handle_request(app, request(sim)) is True
        sim.run(until=20.0)
        assert resched.aborted_migrations == 0
        assert resched._migrating == set()
        assert resched.blacklisted_hosts() == []

    def test_blacklist_expires(self):
        sim, gis, nws = env()
        app = FakeApp(sim)

        def bad_migrate(new_hosts):
            raise RuntimeError("boom")

        app.migrate = bad_migrate
        resched = Rescheduler(sim, gis, nws, mode="force-migrate",
                              blacklist_seconds=50.0)
        resched.handle_request(app, request(sim))
        assert resched.blacklisted_hosts() == ["uiuc.n0", "uiuc.n1"]
        sim.run(until=60.0)
        assert resched.blacklisted_hosts() == []

    def test_evaluate_excludes_blacklisted_hosts(self):
        sim, gis, nws = env()
        app = FakeApp(sim)
        excludes = []

        def propose(exclude=()):
            excludes.append(sorted(exclude))
            return ["uiuc.n0", "uiuc.n1"]

        def bad_migrate(new_hosts):
            raise RuntimeError("boom")

        app.propose_hosts = propose
        app.migrate = bad_migrate
        resched = Rescheduler(sim, gis, nws, mode="force-migrate")
        resched.handle_request(app, request(sim))
        resched.handle_request(app, request(sim))
        assert "uiuc.n0" not in excludes[0]
        assert {"uiuc.n0", "uiuc.n1"} <= set(excludes[1])


class TestOpportunistic:
    def test_period_validation(self):
        sim, gis, nws = env()
        resched = Rescheduler(sim, gis, nws)
        with pytest.raises(ValueError):
            resched.start_opportunistic(period=0.0)

    def test_migrates_after_other_app_finishes(self):
        sim, gis, nws = env()
        finished_app = FakeApp(sim, name="short")
        finished_app._finished = sim.event()
        running_app = FakeApp(sim, name="long", remaining_current=500.0,
                              remaining_new=100.0, cost=10.0)
        running_app._finished = sim.event()
        resched = Rescheduler(sim, gis, nws, mode="default",
                              worst_case_migration_seconds=None)
        resched.manage(finished_app)
        resched.manage(running_app)
        resched.start_opportunistic(period=10.0)
        sim.call_after(15.0, lambda: finished_app._finished.succeed())
        sim.run(until=50.0)
        assert running_app.migrated_to is not None
        assert any(d.trigger == "opportunistic" for d in resched.decisions)

    def test_no_action_without_completions(self):
        sim, gis, nws = env()
        running_app = FakeApp(sim, name="long", remaining_current=500.0,
                              remaining_new=100.0)
        running_app._finished = sim.event()
        resched = Rescheduler(sim, gis, nws, mode="default",
                              worst_case_migration_seconds=None)
        resched.manage(running_app)
        resched.start_opportunistic(period=10.0)
        sim.run(until=100.0)
        assert running_app.migrated_to is None
        assert resched.decisions == []

    def test_finished_apps_not_migrated(self):
        sim, gis, nws = env()
        app_a = FakeApp(sim, name="a")
        app_a._finished = sim.event()
        app_b = FakeApp(sim, name="b")
        app_b._finished = sim.event()
        resched = Rescheduler(sim, gis, nws, mode="force-migrate")
        resched.manage(app_a)
        resched.manage(app_b)
        resched.start_opportunistic(period=5.0)
        sim.call_after(7.0, lambda: app_a._finished.succeed())
        sim.call_after(7.0, lambda: app_b._finished.succeed())
        sim.run(until=30.0)
        assert app_a.migrated_to is None
        assert app_b.migrated_to is None
