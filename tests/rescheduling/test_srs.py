"""Tests for the SRS checkpoint library and the RSS daemon."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed
from repro.mpi import MpiJob
from repro.rescheduling import (
    RegisteredData,
    RuntimeSupportSystem,
    SRSLibrary,
)


def env():
    sim = Simulator()
    grid = fig3_testbed(sim)
    rss = RuntimeSupportSystem(sim, home_host="utk.n0")
    srs = SRSLibrary(sim, grid.topology, rss)
    return sim, grid, rss, srs


def checkpointing_body(srs, dataset, n_iters, n_procs, mflop=50.0,
                       outcomes=None):
    """An SRS-instrumented iterative rank body."""
    def body(ctx):
        progress = yield from srs.restore(ctx, dataset, n_procs)
        start = (progress or 0)
        for step in range(start, n_iters):
            yield ctx.compute(mflop)
            if srs.should_stop():
                yield from srs.checkpoint(ctx, dataset, step + 1, n_procs)
                if outcomes is not None:
                    outcomes.append(("stopped", ctx.rank, step + 1))
                return "stopped"
        if outcomes is not None:
            outcomes.append(("done", ctx.rank, n_iters))
        return "done"
    return body


class TestRss:
    def test_stop_flag_roundtrip(self):
        sim, grid, rss, srs = env()
        assert not rss.stop_requested
        rss.request_stop()
        assert rss.stop_requested
        assert rss.stop_requests == [0.0]
        rss.clear_stop()
        assert not rss.stop_requested

    def test_checkpoint_metadata(self):
        sim, grid, rss, srs = env()
        assert rss.checkpoint("A") is None
        assert not rss.has_checkpoint("A")
        assert rss.datasets() == []


class TestSrs:
    def test_registration_required(self):
        sim, grid, rss, srs = env()
        with pytest.raises(KeyError):
            srs.registered("ghost")

    def test_registered_data_validation(self):
        with pytest.raises(ValueError):
            RegisteredData(name="A", total_bytes=-1.0, block_bytes=1.0)
        with pytest.raises(ValueError):
            RegisteredData(name="A", total_bytes=1.0, block_bytes=0.0)

    def test_fresh_start_restore_returns_none(self):
        sim, grid, rss, srs = env()
        srs.register_data(RegisteredData("A", total_bytes=8e6,
                                         block_bytes=1e5))
        hosts = grid.clusters["utk"].hosts
        job = MpiJob(sim, grid.topology, hosts, name="qr")
        outcomes = []
        done = job.launch(checkpointing_body(srs, "A", 3, len(hosts),
                                             outcomes=outcomes))
        sim.run(stop_event=done)
        assert all(o[0] == "done" for o in outcomes)

    def test_stop_checkpoints_all_ranks(self):
        sim, grid, rss, srs = env()
        srs.register_data(RegisteredData("A", total_bytes=8e6,
                                         block_bytes=1e5))
        hosts = grid.clusters["utk"].hosts  # 4 hosts
        job = MpiJob(sim, grid.topology, hosts, name="qr")
        outcomes = []
        done = job.launch(checkpointing_body(srs, "A", 100, len(hosts),
                                             outcomes=outcomes))
        sim.call_after(0.5, rss.request_stop)
        sim.run(stop_event=done)
        assert all(o[0] == "stopped" for o in outcomes)
        record = rss.checkpoint("A")
        assert record is not None
        assert record.n_procs == 4
        assert len(record.locations) == 4
        total = sum(loc.nbytes for loc in record.locations.values())
        assert total == pytest.approx(8e6)
        # checkpoints are on the ranks' local disks
        for rank, loc in record.locations.items():
            assert loc.depot_host == hosts[rank].name

    def test_restart_resumes_from_progress_on_more_procs(self):
        """The full stop -> restart N-to-M cycle."""
        sim, grid, rss, srs = env()
        srs.register_data(RegisteredData("A", total_bytes=8e6,
                                         block_bytes=1e5))
        utk = grid.clusters["utk"].hosts  # 4
        uiuc = grid.clusters["uiuc"].hosts  # 8
        job1 = MpiJob(sim, grid.topology, utk, name="qr1")
        done1 = job1.launch(checkpointing_body(srs, "A", 50, len(utk)))
        sim.call_after(1.0, rss.request_stop)
        sim.run(stop_event=done1)
        stopped_at = rss.checkpoint("A").progress
        assert 0 < stopped_at < 50

        rss.clear_stop()
        outcomes = []
        job2 = MpiJob(sim, grid.topology, uiuc, name="qr2")
        done2 = job2.launch(checkpointing_body(srs, "A", 50, len(uiuc),
                                               outcomes=outcomes))
        sim.run(stop_event=done2)
        assert all(o[0] == "done" for o in outcomes)
        assert len(outcomes) == 8

    def test_restart_pays_wan_read_cost(self):
        """Restoring UTK checkpoints onto UIUC crosses the Internet;
        restoring onto the same UTK nodes stays local and is cheap."""
        data_bytes = 50e6

        def run_cycle(restart_cluster):
            sim, grid, rss, srs = env()
            srs.register_data(RegisteredData("A", total_bytes=data_bytes,
                                             block_bytes=1e5))
            utk = grid.clusters["utk"].hosts
            job1 = MpiJob(sim, grid.topology, utk, name="one")
            done1 = job1.launch(checkpointing_body(srs, "A", 500, len(utk)))
            sim.call_after(0.5, rss.request_stop)
            sim.run(stop_event=done1)
            rss.clear_stop()
            hosts2 = grid.clusters[restart_cluster].hosts
            restore_start = sim.now
            job2 = MpiJob(sim, grid.topology, hosts2, name="two")

            def restore_only(ctx):
                yield from srs.restore(ctx, "A", len(hosts2))

            done2 = job2.launch(restore_only)
            sim.run(stop_event=done2)
            return sim.now - restore_start

        local = run_cycle("utk")
        remote = run_cycle("uiuc")
        assert remote > local * 3
        assert remote >= data_bytes / 5e6 * 0.5  # WAN-dominated

    def test_checkpoint_overwrite_same_key(self):
        """Re-checkpointing at a new progress replaces the old data."""
        sim, grid, rss, srs = env()
        srs.register_data(RegisteredData("A", total_bytes=4e6,
                                         block_bytes=1e5))
        hosts = grid.clusters["utk"].hosts
        job = MpiJob(sim, grid.topology, hosts, name="qr")

        def body(ctx):
            for progress in (1, 2):
                yield ctx.compute(10.0)
                yield from srs.checkpoint(ctx, "A", progress, len(hosts))

        done = job.launch(body)
        sim.run(stop_event=done)
        assert rss.checkpoint("A").progress == 2

    def test_depot_reuse_per_host(self):
        sim, grid, rss, srs = env()
        host = grid.clusters["utk"][0]
        d1 = srs.depot_on(host)
        d2 = srs.depot_on(host)
        assert d1 is d2
