"""Tests for IBP depots and block-cyclic redistribution math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.microgrid import fig3_testbed
from repro.ibp import Depot, DepotError
from repro.rescheduling import (
    block_owner,
    moved_fraction,
    partition_bytes,
    redistribution_plan,
    redistribution_volume,
    restore_plan,
)


def depot_env():
    sim = Simulator()
    grid = fig3_testbed(sim)
    host = grid.clusters["utk"][0]
    depot = Depot(sim, grid.topology, host)
    return sim, grid, host, depot


class TestDepot:
    def test_local_write_uses_disk_bandwidth(self):
        sim, grid, host, depot = depot_env()
        ev = depot.write(host.name, "ckpt", 30e6)  # 1 s at 30 MB/s disk
        sim.run(stop_event=ev)
        assert ev.value == pytest.approx(1.0, rel=1e-3)
        assert depot.has("ckpt")
        assert depot.used_bytes == pytest.approx(30e6)

    def test_local_read(self):
        sim, grid, host, depot = depot_env()
        ev = depot.write(host.name, "ckpt", 30e6)
        sim.run(stop_event=ev)
        rd = depot.read(host.name, "ckpt")
        sim.run(stop_event=rd)
        assert rd.value == pytest.approx(1.0, rel=1e-3)

    def test_remote_read_crosses_network(self):
        """Reading a UTK checkpoint from UIUC pays the 5 MB/s WAN."""
        sim, grid, host, depot = depot_env()
        ev = depot.write(host.name, "ckpt", 50e6)
        sim.run(stop_event=ev)
        rd = depot.read("uiuc.n0", "ckpt")
        sim.run(stop_event=rd)
        assert rd.value >= 10.0  # 50 MB / 5 MB/s

    def test_remote_write_pays_network(self):
        sim, grid, host, depot = depot_env()
        ev = depot.write("uiuc.n0", "up", 10e6)
        sim.run(stop_event=ev)
        assert ev.value >= 2.0  # 10 MB over the 5 MB/s WAN

    def test_partial_read_scales(self):
        sim, grid, host, depot = depot_env()
        ev = depot.write(host.name, "ckpt", 50e6)
        sim.run(stop_event=ev)
        rd = depot.read_partial("uiuc.n0", "ckpt", 5e6)
        sim.run(stop_event=rd)
        assert 1.0 <= rd.value <= 2.0  # ~1 s at 5 MB/s

    def test_partial_read_too_large_rejected(self):
        sim, grid, host, depot = depot_env()
        ev = depot.write(host.name, "ckpt", 1e6)
        sim.run(stop_event=ev)
        with pytest.raises(DepotError):
            depot.read_partial(host.name, "ckpt", 2e6)

    def test_missing_allocation_raises(self):
        sim, grid, host, depot = depot_env()
        with pytest.raises(DepotError):
            depot.read(host.name, "ghost")
        with pytest.raises(DepotError):
            depot.delete("ghost")

    def test_capacity_enforced(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        depot = Depot(sim, grid.topology, grid.clusters["utk"][0],
                      capacity_bytes=1e6)
        with pytest.raises(DepotError):
            depot.write("utk.n0", "big", 2e6)

    def test_delete_frees_space(self):
        sim, grid, host, depot = depot_env()
        ev = depot.write(host.name, "a", 1e6)
        sim.run(stop_event=ev)
        depot.delete("a")
        assert not depot.has("a")
        assert depot.used_bytes == 0


class TestRedistribution:
    def test_block_owner_cyclic(self):
        assert [block_owner(k, 3) for k in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_same_width_no_movement(self):
        assert redistribution_volume(1e6, 1e3, 4, 4) == 0.0
        assert moved_fraction(4, 4) == 0.0

    def test_4_to_8_plan(self):
        # blocks 0..7 pattern: k%4 vs k%8 differ for k=4,5,6,7 mod 8
        plan = redistribution_plan(8e3, 1e3, 4, 8)
        assert plan == {(0, 4): 1e3, (1, 5): 1e3, (2, 6): 1e3, (3, 7): 1e3}
        assert redistribution_volume(8e3, 1e3, 4, 8) == pytest.approx(4e3)

    def test_moved_fraction_4_to_8(self):
        assert moved_fraction(4, 8) == pytest.approx(0.5)

    def test_partition_bytes_sums_to_total(self):
        total = 10_500.0
        parts = [partition_bytes(total, 1e3, r, 4) for r in range(4)]
        assert sum(parts) == pytest.approx(total)

    def test_partial_last_block(self):
        # 2.5 blocks over 2 procs: rank0 gets blocks 0 and 2(partial)
        assert partition_bytes(2500.0, 1000.0, 0, 2) == pytest.approx(1500.0)
        assert partition_bytes(2500.0, 1000.0, 1, 2) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            redistribution_plan(1e3, 0.0, 2, 2)
        with pytest.raises(ValueError):
            redistribution_plan(1e3, 1e2, 0, 2)
        with pytest.raises(ValueError):
            partition_bytes(1e3, 1e2, 5, 4)
        with pytest.raises(ValueError):
            block_owner(-1, 2)
        with pytest.raises(ValueError):
            moved_fraction(0, 2)

    def test_restore_plan_covers_new_partition(self):
        total, block = 16e3, 1e3
        for q_rank in range(8):
            need = restore_plan(total, block, 4, 8, q_rank)
            assert sum(need.values()) == pytest.approx(
                partition_bytes(total, block, q_rank, 8))

    def test_restore_plan_validation(self):
        with pytest.raises(ValueError):
            restore_plan(1e3, 1e2, 0, 2, 0)
        with pytest.raises(ValueError):
            restore_plan(1e3, 1e2, 2, 2, 5)


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=12),
    q=st.integers(min_value=1, max_value=12),
    n_blocks=st.integers(min_value=1, max_value=64),
)
def test_property_redistribution_conserves_data(p, q, n_blocks):
    """Every byte of the dataset lands on exactly one new rank, and the
    per-pair plan never exceeds the dataset size."""
    block = 1000.0
    total = n_blocks * block
    covered = 0.0
    for q_rank in range(q):
        need = restore_plan(total, block, p, q, q_rank)
        covered += sum(need.values())
        # sources are valid old ranks
        assert all(0 <= src < p for src in need)
    assert covered == pytest.approx(total)
    moving = redistribution_volume(total, block, p, q)
    assert 0.0 <= moving <= total + 1e-9
    if p == q:
        assert moving == 0.0


@settings(max_examples=30, deadline=None)
@given(
    n_procs=st.integers(min_value=1, max_value=16),
    n_blocks=st.integers(min_value=1, max_value=100),
)
def test_property_partitions_tile_dataset(n_procs, n_blocks):
    block = 512.0
    total = n_blocks * block - 100.0  # ragged last block
    parts = [partition_bytes(total, block, r, n_procs)
             for r in range(n_procs)]
    assert sum(parts) == pytest.approx(total)
    assert all(part >= 0 for part in parts)
