"""Pins for the swap-rescheduler bugs the soak harness flushed out.

* ``gang_policy`` tie-break: equal-gate sites must resolve to the
  first in sorted order, so adding an unrelated site can never flip an
  established gang destination.
* ``SwapRescheduler.stop()`` must cancel the pending period timeout: a
  stopped rescheduler can not run one more ``check_and_swap`` a period
  later.
* The loop must not decide against a finished-but-untriggered job, and
  swaps queued during the final iteration die with the job instead of
  leaking in ``_pending_swaps``.
"""

from types import SimpleNamespace

from repro.microgrid.host import Architecture, Host
from repro.microgrid.network import Topology
from repro.mpi.swap import SwappableJob
from repro.rescheduling.swapping import SwapRescheduler, gang_policy
from repro.sim.events import AllOf
from repro.sim.kernel import Simulator


class TestGangPolicyTieBreak:
    def test_equal_gates_pick_first_site_in_sorted_order(self):
        active = [(0, "old.n0", 100.0), (1, "old.n1", 100.0)]
        inactive = [("bsite.n0", 220.0), ("bsite.n1", 200.0),
                    ("asite.n0", 200.0), ("asite.n1", 200.0)]
        # Both sites gate at 200; the tie must go to "asite".
        assert gang_policy(active, inactive) == [(0, "asite.n0"),
                                                 (1, "asite.n1")]

    def test_adding_unrelated_site_cannot_flip_destination(self):
        active = [(0, "old.n0", 100.0)]
        before = gang_policy(active, [("asite.n0", 200.0)])
        after = gang_policy(active, [("asite.n0", 200.0),
                                     ("zsite.n0", 200.0)])
        # Before the fix ``>=`` let the later-sorted equal-gate site
        # overwrite the winner, so the new site stole the gang.
        assert before == after == [(0, "asite.n0")]

    def test_strictly_better_site_still_wins(self):
        active = [(0, "old.n0", 100.0)]
        inactive = [("asite.n0", 200.0), ("zsite.n0", 300.0)]
        assert gang_policy(active, inactive) == [(0, "zsite.n0")]

    def test_below_threshold_sites_never_qualify(self):
        active = [(0, "old.n0", 100.0)]
        assert gang_policy(active, [("asite.n0", 102.0)],
                           improvement=1.05) == []


class _FakeSwappable:
    """Duck-typed stand-in for SwappableJob: enough for the daemon."""

    def __init__(self):
        self.job = SimpleNamespace(finished=None)
        self.has_pending_swaps = False

    def active_hosts(self):
        return []

    def inactive_hosts(self):
        return []

    def pool_hosts(self):
        return []


def _daemon(sim, period=10.0):
    fake = _FakeSwappable()
    resched = SwapRescheduler(sim, fake, nws=None, policy="gang",
                              period=period)
    checks = []
    resched.check_and_swap = lambda: checks.append(sim.now)
    return fake, resched, checks


class TestSwapReschedulerStop:
    def test_stop_cancels_the_pending_period(self):
        sim = Simulator()
        _fake, resched, checks = _daemon(sim)
        resched.start()
        sim.run(until=25.0)
        resched.stop()
        sim.run(until=100.0)
        # Before the fix the loop woke once more at t=30 and decided.
        assert checks == [10.0, 20.0]

    def test_stop_before_first_period_means_no_checks(self):
        sim = Simulator()
        _fake, resched, checks = _daemon(sim)
        resched.start()
        sim.run(until=1.0)
        resched.stop()
        sim.run(until=100.0)
        assert checks == []

    def test_restart_after_stop_resumes_checking(self):
        sim = Simulator()
        _fake, resched, checks = _daemon(sim)
        resched.start()
        sim.run(until=15.0)
        resched.stop()
        resched._stopped = False
        resched.start()
        sim.run(until=36.0)
        assert checks == [10.0, 25.0, 35.0]

    def test_loop_exits_when_job_finished_before_check(self):
        sim = Simulator()
        fake, resched, checks = _daemon(sim)
        fin = sim.event("job:finished")
        fake.job.finished = fin
        resched.start()
        sim.call_at(15.0, fin.succeed)
        sim.run(until=100.0)
        assert checks == [10.0]


class TestFinishedButUntriggeredWindow:
    def test_job_with_all_ranks_done_counts_as_finished(self):
        sim = Simulator()
        fake, resched, _checks = _daemon(sim)
        rank0, rank1 = sim.event("r0"), sim.event("r1")
        fake.job.finished = AllOf(sim, [rank0, rank1], name="fin")
        assert resched._job_finished() is False
        rank0.succeed()
        assert resched._job_finished() is False
        rank1.succeed()
        # Both ranks triggered, AllOf not yet processed: deciding now
        # would queue swaps no iteration boundary can ever apply.
        assert fake.job.finished.triggered is False
        assert resched._job_finished() is True

    def test_pending_swaps_die_with_the_job(self):
        sim = Simulator()
        arch = Architecture(name="test", mflops=100.0)
        topology = Topology(sim)
        pool = [Host(sim, "a.n0", arch), Host(sim, "b.n0", arch)]
        for host in pool:
            topology.add_node(host.name)
        job = SwappableJob(sim, topology, pool, active_n=1)

        def body(ctx):
            yield sim.timeout(5.0)

        done = job.launch(body)
        # A swap requested during the final iteration has no sync point
        # left to apply it; it must be discarded at job end.
        sim.call_at(2.0, lambda: job.request_swap(0, pool[1]))
        sim.run(stop_event=done)
        sim.run()
        assert not job.has_pending_swaps
        assert job._pending_swaps == []
