"""Tests for semi-automatic component model construction."""

import pytest

from repro.apps import qr_matrix_bytes, qr_total_mflop
from repro.microgrid import ARCH_PIII_933, Architecture, CacheLevel
from repro.perfmodel import (
    InstrumentedRun,
    construct_component_model,
    suggest_training_sizes,
)


def qr_like_run(n, with_trace=True):
    """Synthesize what counters+instrumentation would report for QR."""
    trace = []
    if with_trace:
        blocks = int(n)  # working set scales with n
        trace = list(range(blocks)) * 3  # streaming passes
    return InstrumentedRun(
        problem_size=float(n),
        flop_count=qr_total_mflop(n) * 1e6,
        memory_trace=trace,
        input_bytes=qr_matrix_bytes(int(n)),
        output_bytes=qr_matrix_bytes(int(n)),
        resident_bytes=float(n * n * 8),
    )


class TestInstrumentedRun:
    def test_validation(self):
        with pytest.raises(ValueError):
            InstrumentedRun(problem_size=0.0, flop_count=1.0)
        with pytest.raises(ValueError):
            InstrumentedRun(problem_size=1.0, flop_count=-1.0)


class TestSuggestTrainingSizes:
    def test_geometric_spacing(self):
        sizes = suggest_training_sizes(100.0, n_sizes=4, ratio=2.0)
        assert sizes == [100.0, 200.0, 400.0, 800.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            suggest_training_sizes(0.0)
        with pytest.raises(ValueError):
            suggest_training_sizes(10.0, n_sizes=1)
        with pytest.raises(ValueError):
            suggest_training_sizes(10.0, ratio=1.0)


class TestConstruction:
    def test_needs_two_distinct_sizes(self):
        with pytest.raises(ValueError):
            construct_component_model([qr_like_run(100)])
        with pytest.raises(ValueError):
            construct_component_model([qr_like_run(100), qr_like_run(100)])

    def test_flop_extrapolation(self):
        runs = [qr_like_run(n, with_trace=False)
                for n in suggest_training_sizes(100, n_sizes=5)]
        model = construct_component_model(runs)
        for n in (2000, 5000):
            assert model.mflop(n) == pytest.approx(qr_total_mflop(n),
                                                   rel=0.05)

    def test_volume_models_fitted(self):
        runs = [qr_like_run(n, with_trace=False) for n in (100, 200, 400)]
        model = construct_component_model(runs)
        assert model.input_bytes(1000) == pytest.approx(
            qr_matrix_bytes(1000), rel=0.05)
        assert model.memory_required_bytes(1000) == pytest.approx(
            1000 * 1000 * 8, rel=0.05)

    def test_zero_volumes_stay_zero(self):
        runs = [InstrumentedRun(problem_size=float(n), flop_count=n * 1e6)
                for n in (10, 20, 40)]
        model = construct_component_model(runs)
        assert model.input_bytes(100) == 0.0
        assert model.output_bytes(100) == 0.0

    def test_mrd_model_built_from_traces(self):
        runs = [qr_like_run(n) for n in (64, 128, 256)]
        model = construct_component_model(runs)
        assert model.mrd_model is not None
        # streaming working set of ~n blocks: big cache hits, tiny misses
        line = 64
        big = model.mrd_model.predict_miss_fraction(512, 1024 * line, line)
        small = model.mrd_model.predict_miss_fraction(512, 16 * line, line)
        assert small > big

    def test_no_traces_no_mrd(self):
        runs = [qr_like_run(n, with_trace=False) for n in (64, 128)]
        model = construct_component_model(runs)
        assert model.mrd_model is None

    def test_constructed_model_usable_for_scheduling(self):
        """End-to-end: the constructed model plugs into eligibility and
        cpu_seconds exactly like a hand-written one."""
        runs = [qr_like_run(n) for n in (64, 128, 256)]
        model = construct_component_model(runs)
        seconds = model.cpu_seconds(1000, ARCH_PIII_933)
        assert seconds > 0
        # memory eligibility: a 1 GB machine can't hold a 16000^2 matrix
        tiny = Architecture(name="tiny", mflops=100.0,
                            memory_bytes=1 << 30)
        assert model.eligible(1000, tiny)
        assert not model.eligible(16000, tiny)

    def test_memory_seconds_respects_cache_config(self):
        runs = [qr_like_run(n) for n in (64, 128, 256)]
        model = construct_component_model(runs)
        big_cache = Architecture(
            name="big", mflops=100.0,
            caches=(CacheLevel(size=8 << 20, miss_penalty=1e-7),))
        small_cache = Architecture(
            name="small", mflops=100.0,
            caches=(CacheLevel(size=16 << 10, miss_penalty=1e-7),))
        assert model.memory_seconds(512, small_cache) >= \
            model.memory_seconds(512, big_cache)
