"""Tests for flop-count fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import fit_flop_model, power_law_fit


class TestFitFlopModel:
    def test_recovers_cubic_law(self):
        """The QR-style 4/3 n^3 law must be recovered from small runs."""
        sizes = [100, 200, 300, 400, 500]
        counts = [4 / 3 * n ** 3 for n in sizes]
        model = fit_flop_model(sizes, counts)
        assert model(2000) == pytest.approx(4 / 3 * 2000 ** 3, rel=1e-3)
        assert model.dominant_degree == 3

    def test_recovers_quadratic_law_with_linear_term(self):
        sizes = [50, 100, 150, 200, 300]
        counts = [5 * n ** 2 + 100 * n for n in sizes]
        model = fit_flop_model(sizes, counts)
        assert model(1000) == pytest.approx(5e6 + 1e5, rel=1e-2)

    def test_extrapolation_never_negative(self):
        """NNLS guarantees non-negative coefficients, hence counts."""
        rng = np.random.default_rng(0)
        sizes = np.arange(10, 100, 10)
        counts = 2.0 * sizes ** 2 * (1 + rng.normal(0, 0.05, len(sizes)))
        model = fit_flop_model(sizes, np.maximum(counts, 0))
        for n in (1, 5, 1000, 100000):
            assert model(n) >= 0

    def test_noisy_fit_stays_close(self):
        rng = np.random.default_rng(1)
        sizes = np.arange(100, 600, 50)
        truth = 4 / 3 * sizes.astype(float) ** 3
        noisy = truth * (1 + rng.normal(0, 0.02, len(sizes)))
        model = fit_flop_model(sizes, noisy)
        assert model(1200) == pytest.approx(4 / 3 * 1200 ** 3, rel=0.1)

    def test_mflop_conversion(self):
        model = fit_flop_model([10, 20], [1e6, 2e6], max_degree=1)
        assert model.mflop(10) == pytest.approx(1.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_flop_model([10], [100.0])
        with pytest.raises(ValueError):
            fit_flop_model([10, -5], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_flop_model([10, 20], [1.0, -2.0])
        with pytest.raises(ValueError):
            fit_flop_model([10, 20], [1.0, 2.0, 3.0])

    def test_negative_eval_size_rejected(self):
        model = fit_flop_model([10, 20], [1.0, 2.0])
        with pytest.raises(ValueError):
            model(-1)


class TestPowerLawFit:
    def test_exact_power_law(self):
        sizes = [10, 20, 40, 80]
        values = [3.0 * n ** 1.5 for n in sizes]
        a, p = power_law_fit(sizes, values)
        assert a == pytest.approx(3.0, rel=1e-6)
        assert p == pytest.approx(1.5, rel=1e-6)

    def test_constant_series(self):
        a, p = power_law_fit([10, 100, 1000], [7.0, 7.0, 7.0])
        assert a * 500 ** p == pytest.approx(7.0, rel=1e-6)

    def test_zero_values_clamped_not_crashing(self):
        a, p = power_law_fit([10, 20], [0.0, 0.0])
        assert a >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_fit([1], [1.0])
        with pytest.raises(ValueError):
            power_law_fit([1, 2], [1.0, -1.0])
        with pytest.raises(ValueError):
            power_law_fit([0, 2], [1.0, 1.0])


@settings(max_examples=30, deadline=None)
@given(
    coef=st.floats(min_value=0.1, max_value=10.0),
    degree=st.integers(min_value=0, max_value=3),
)
def test_property_pure_monomials_recovered(coef, degree):
    sizes = [20, 40, 60, 80, 100]
    counts = [coef * n ** degree for n in sizes]
    model = fit_flop_model(sizes, counts)
    for n in (10, 200, 500):
        assert model(n) == pytest.approx(coef * n ** degree,
                                         rel=1e-3, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    a=st.floats(min_value=0.01, max_value=100.0),
    p=st.floats(min_value=0.0, max_value=3.0),
)
def test_property_power_law_roundtrip(a, p):
    sizes = [16, 32, 64, 128]
    values = [a * n ** p for n in sizes]
    a2, p2 = power_law_fit(sizes, values)
    assert a2 == pytest.approx(a, rel=1e-4)
    assert p2 == pytest.approx(p, abs=1e-4)
