"""Tests for memory-reuse-distance analysis and cross-size MRD models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import MrdModel, ReuseHistogram, reuse_distances


def streaming_trace(n_blocks, passes):
    """Sequential sweep over n_blocks, repeated `passes` times.

    Every non-cold access has reuse distance exactly n_blocks - 1.
    """
    return list(range(n_blocks)) * passes


class TestReuseDistances:
    def test_cold_accesses_flagged(self):
        assert reuse_distances([1, 2, 3]) == [-1, -1, -1]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([5, 5]) == [-1, 0]

    def test_one_intervening_block(self):
        assert reuse_distances([1, 2, 1]) == [-1, -1, 1]

    def test_duplicate_intervening_blocks_count_once(self):
        # between the two 1s: blocks {2} only, accessed twice
        assert reuse_distances([1, 2, 2, 1]) == [-1, -1, 0, 1]

    def test_streaming_pattern(self):
        distances = reuse_distances(streaming_trace(4, 3))
        # first pass cold, later passes distance 3
        assert distances[:4] == [-1, -1, -1, -1]
        assert distances[4:] == [3] * 8

    def test_stack_property_lru(self):
        # classic example: a b c b a -> a's second access sees {b, c}
        assert reuse_distances([1, 2, 3, 2, 1]) == [-1, -1, -1, 1, 2]

    def test_empty_trace(self):
        assert reuse_distances([]) == []

    def test_matches_naive_on_random_trace(self):
        rng = np.random.default_rng(0)
        trace = list(rng.integers(0, 30, 300))

        def naive(trace):
            out = []
            last = {}
            for t, b in enumerate(trace):
                if b not in last:
                    out.append(-1)
                else:
                    out.append(len(set(trace[last[b] + 1:t])))
                last[b] = t
            return out

        assert reuse_distances(trace) == naive(trace)


class TestReuseHistogram:
    def test_from_trace_counts(self):
        hist = ReuseHistogram.from_trace(10, streaming_trace(10, 3))
        assert hist.total_accesses == 30
        assert hist.cold_accesses == 10

    def test_streaming_histogram_is_flat(self):
        hist = ReuseHistogram.from_trace(8, streaming_trace(8, 4))
        assert all(d == pytest.approx(7.0) for d in hist.percentile_distances)

    def test_miss_fraction_large_cache_only_cold(self):
        hist = ReuseHistogram.from_trace(8, streaming_trace(8, 4))
        # cache holds all 8 blocks -> only the 8 cold misses
        assert hist.miss_fraction(cache_blocks=16) == pytest.approx(8 / 32)

    def test_miss_fraction_tiny_cache_all_miss(self):
        hist = ReuseHistogram.from_trace(8, streaming_trace(8, 4))
        # streaming over 8 blocks thrashes a 4-block LRU cache entirely
        assert hist.miss_fraction(cache_blocks=4) == pytest.approx(1.0)

    def test_empty_trace_histogram(self):
        hist = ReuseHistogram.from_trace(1, [])
        assert hist.miss_fraction(64) == 0.0

    def test_bin_count_validated(self):
        with pytest.raises(ValueError):
            ReuseHistogram.from_trace(1, [1, 2], n_bins=0)


class TestMrdModel:
    @staticmethod
    def fitted_model(sizes=(16, 32, 64), passes=4):
        hists = [ReuseHistogram.from_trace(n, streaming_trace(n, passes))
                 for n in sizes]
        return MrdModel.fit(hists)

    def test_predicts_distance_scaling(self):
        """Streaming reuse distance is ~n; the model must extrapolate a
        miss cliff at cache_blocks ~ n for unseen n."""
        model = self.fitted_model()
        line = 64
        n = 256  # unseen, 4x the largest training size
        # cache with 512 lines holds the whole 256-block working set: hits
        small_misses = model.predict_miss_count(n, cache_bytes=512 * line,
                                                line_bytes=line)
        # cache with 64 lines thrashes: everything misses
        big_misses = model.predict_miss_count(n, cache_bytes=64 * line,
                                              line_bytes=line)
        total = model.predict_accesses(n)
        assert small_misses / total < 0.35
        assert big_misses / total > 0.95

    def test_access_count_extrapolation(self):
        model = self.fitted_model(passes=4)
        assert model.predict_accesses(128) == pytest.approx(512, rel=0.05)

    def test_miss_fraction_bounded(self):
        model = self.fitted_model()
        for n in (10, 100, 1000):
            for cache in (1024, 64 * 1024, 1024 ** 2):
                frac = model.predict_miss_fraction(n, cache)
                assert 0.0 <= frac <= 1.0

    def test_fraction_monotone_in_cache_size(self):
        model = self.fitted_model()
        fractions = [model.predict_miss_fraction(200, cache)
                     for cache in (1024, 8192, 65536, 1024 ** 2)]
        assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_fit_validation(self):
        hist = ReuseHistogram.from_trace(16, streaming_trace(16, 2))
        with pytest.raises(ValueError):
            MrdModel.fit([hist])
        with pytest.raises(ValueError):
            MrdModel.fit([hist, hist])  # same size twice

    def test_mixed_bin_counts_rejected(self):
        h1 = ReuseHistogram.from_trace(16, streaming_trace(16, 2), n_bins=8)
        h2 = ReuseHistogram.from_trace(32, streaming_trace(32, 2), n_bins=16)
        with pytest.raises(ValueError):
            MrdModel.fit([h1, h2])

    def test_cache_validation(self):
        model = self.fitted_model()
        with pytest.raises(ValueError):
            model.predict_miss_count(100, cache_bytes=0)


@settings(max_examples=20, deadline=None)
@given(trace=st.lists(st.integers(min_value=0, max_value=20),
                      min_size=0, max_size=200))
def test_property_distances_match_naive(trace):
    """The Fenwick-tree algorithm agrees with the quadratic definition."""
    last = {}
    expected = []
    for t, b in enumerate(trace):
        if b not in last:
            expected.append(-1)
        else:
            expected.append(len(set(trace[last[b] + 1:t])))
        last[b] = t
    assert reuse_distances(trace) == expected


@settings(max_examples=20, deadline=None)
@given(trace=st.lists(st.integers(min_value=0, max_value=15),
                      min_size=1, max_size=100))
def test_property_histogram_miss_fraction_monotone(trace):
    hist = ReuseHistogram.from_trace(1, trace)
    caches = [1, 2, 4, 8, 16, 32]
    fracs = [hist.miss_fraction(c) for c in caches]
    assert all(a >= b - 1e-12 for a, b in zip(fracs, fracs[1:]))
    assert all(0.0 <= f <= 1.0 for f in fracs)
