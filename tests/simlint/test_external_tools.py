"""Gated checks for the external linters (ruff, mypy).

The container this repo is developed in does not ship ruff or mypy and
nothing may be pip-installed, so these tests skip unless the tools are
on PATH (they are in the CI ``lint`` job, which installs both).  Their
job is to keep the committed pyproject.toml configs honest: if a config
key goes stale or the tree drifts dirty, the failure shows up the
moment the tools are actually available rather than only in CI logs.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(cmd):
    return subprocess.run(cmd, cwd=str(REPO_ROOT), capture_output=True,
                          text=True)


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed (CI-only check)")
def test_ruff_check_is_clean():
    proc = _run(["ruff", "check", "src", "tests", "benchmarks"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed (CI-only check)")
def test_mypy_baseline_is_clean():
    proc = _run([sys.executable, "-m", "mypy", "--config-file",
                 "pyproject.toml"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
