"""The ``repro lint`` CLI surface, including the shipped-tree self-check."""

import json
import os
from pathlib import Path

import repro
from repro.cli import build_parser, main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_DIR = Path(repro.__file__).parent


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == []
        assert args.format == "text"
        assert args.baseline is None

    def test_options(self):
        args = build_parser().parse_args(
            ["lint", "src", "--format", "json", "--baseline", "b.json",
             "--select", "SL001,SL003", "--ignore", "SL008"])
        assert args.paths == ["src"]
        assert args.format == "json"
        assert args.select == "SL001,SL003"
        assert args.ignore == "SL008"


class TestSelfCheck:
    def test_shipped_tree_is_clean(self, capsys):
        # The acceptance bar: the linter passes over its own repository
        # (violations either fixed or suppressed in-file with a
        # justification).
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_shipped_tree_is_clean_with_baseline(self, capsys):
        rc = main(["lint", str(PACKAGE_DIR), "--baseline",
                   str(REPO_ROOT / "simlint-baseline.json")])
        assert rc == 0

    def test_benchmark_wall_clock_is_suppressed_not_absent(self):
        # Guard against the suppressions rotting: the two benchmark
        # harnesses really do contain SL001 sites, visible when
        # suppression comments are the only thing hiding them.
        experiments = PACKAGE_DIR / "experiments"
        source = (experiments / "substrate.py").read_text()
        assert "simlint: ignore[SL001]" in source
        source = (experiments / "scheduler_bench.py").read_text()
        assert "simlint: ignore[SL001]" in source


class TestFixtureTree:
    def test_exit_1_and_every_rule_fires(self, capsys):
        rc = main(["lint", str(FIXTURES), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        fired = {f["rule"] for f in payload["findings"]}
        assert fired == {"SL000", "SL001", "SL002", "SL003", "SL004",
                         "SL005", "SL006", "SL007", "SL008", "SL009",
                         "SL010", "SL020", "SL021", "SL022", "SL023"}
        assert payload["count"] == len(payload["findings"])

    def test_text_report_shape(self, capsys):
        rc = main(["lint", str(FIXTURES / "sl001.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "sl001.py:" in out
        assert "SL001 [error]" in out
        assert "hint:" in out
        assert "finding(s)" in out

    def test_select_and_ignore(self, capsys):
        rc = main(["lint", str(FIXTURES), "--format", "json",
                   "--select", "SL002"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"SL002"}

        rc = main(["lint", str(FIXTURES / "sl002.py"), "--format", "json",
                   "--ignore", "SL002"])
        assert rc == 0

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--select", "SL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", str(FIXTURES / "no-such-dir")]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL001", "SL010"):
            assert rule_id in out


class TestBaselineFlow:
    def test_write_then_lint_with_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", str(FIXTURES / "sl004.py"),
                   "--write-baseline", str(baseline)])
        assert rc == 0
        assert baseline.is_file()
        capsys.readouterr()

        rc = main(["lint", str(FIXTURES / "sl004.py"),
                   "--baseline", str(baseline)])
        assert rc == 0
        assert "grandfathered by baseline" in capsys.readouterr().out

    def test_json_report_carries_grandfathered(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(FIXTURES / "sl009.py"),
              "--write-baseline", str(baseline)])
        capsys.readouterr()
        rc = main(["lint", str(FIXTURES / "sl009.py"),
                   "--baseline", str(baseline), "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["grandfathered"]


class TestModuleEntry:
    def test_python_m_repro_lint(self):
        # The CI job invokes the module entry point; keep it wired.
        import subprocess
        import sys
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--format", "json",
             "--baseline", str(REPO_ROOT / "simlint-baseline.json")],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
