"""Baseline round-trips: grandfather findings, fail only on new ones."""

import json
from pathlib import Path

import pytest

from repro.simlint import (
    apply_baseline,
    lint_paths,
    load_baseline,
    make_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures"

DIRTY = """\
import time


def run(sim):
    return time.time()
"""


def make_tree(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "dirty.py").write_text(DIRTY)
    (tree / "clean.py").write_text("def run(sim):\n    return sim.now\n")
    return tree


def test_round_trip_suppresses_everything(tmp_path):
    tree = make_tree(tmp_path)
    findings = lint_paths([str(tree)])
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(str(baseline_path), make_baseline(findings))
    doc = load_baseline(str(baseline_path))
    new, old = apply_baseline(lint_paths([str(tree)]), doc)
    assert new == []
    assert sorted(old) == sorted(findings)


def test_new_violation_not_covered_by_baseline(tmp_path):
    tree = make_tree(tmp_path)
    baseline = make_baseline(lint_paths([str(tree)]))
    (tree / "clean.py").write_text(
        "import random\n\n\ndef run(sim):\n    return random.random()\n")
    new, old = apply_baseline(lint_paths([str(tree)]), baseline)
    assert {f.rule for f in new} == {"SL002"}
    assert all(f.path == "clean.py" for f in new)
    assert old  # the grandfathered finding is still recognized


def test_fingerprints_survive_line_shifts(tmp_path):
    tree = make_tree(tmp_path)
    baseline = make_baseline(lint_paths([str(tree)]))
    shifted = "# a new leading comment\n\n" + DIRTY
    (tree / "dirty.py").write_text(shifted)
    new, old = apply_baseline(lint_paths([str(tree)]), baseline)
    assert new == []
    assert old


def test_editing_the_flagged_line_invalidates_the_entry(tmp_path):
    tree = make_tree(tmp_path)
    baseline = make_baseline(lint_paths([str(tree)]))
    (tree / "dirty.py").write_text(DIRTY.replace(
        "return time.time()", "return time.time() + 1.0"))
    new, _old = apply_baseline(lint_paths([str(tree)]), baseline)
    assert {f.rule for f in new} == {"SL001"}


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "twice.py").write_text(
        "import time\n\n\ndef run(sim):\n"
        "    a = time.time()\n"
        "    a = time.time()\n"
        "    return a\n")
    findings = lint_paths([str(tree)], select=["SL001"])
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint
    # Baselining both really covers both.
    new, old = apply_baseline(findings, make_baseline(findings))
    assert new == [] and len(old) == 2


def test_load_rejects_malformed_documents(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(str(bad))
    bad.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError, match="findings"):
        load_baseline(str(bad))


def test_shipped_baseline_schema(tmp_path):
    # The committed repo baseline stays loadable and (currently) empty:
    # the tree is clean, with deliberate exceptions suppressed in-file.
    repo_baseline = Path(__file__).resolve().parents[2] / (
        "simlint-baseline.json")
    doc = load_baseline(str(repo_baseline))
    assert doc["findings"] == {}
