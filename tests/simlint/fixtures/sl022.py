"""Fixture: SL022 — one RNG stream drawn from several process generators."""

from numpy.random import default_rng


class Churn:
    def __init__(self, sim):
        self.sim = sim
        self.rng = default_rng(7)
        self.jitter = default_rng(11)
        sim.process(self.arrivals(), name="arrivals")
        sim.process(self.departures(), name="departures")
        sim.process(self.heartbeat(), name="heartbeat")

    def arrivals(self):
        while True:
            yield self.sim.timeout(self.rng.exponential(10.0))  # EXPECT[SL022]

    def departures(self):
        while True:
            yield self.sim.timeout(self.rng.exponential(50.0))  # EXPECT[SL022]

    def heartbeat(self):
        # Negative control: self.jitter has exactly one drawing
        # process generator, so its draws are interleaving-proof.
        while True:
            yield self.sim.timeout(self.jitter.exponential(5.0))
