"""SL005 fixture: exact float equality on simulation-time values."""

import math


def positives(task, sim, deadline):
    if task.finish_time == deadline:  # EXPECT[SL005]
        return True
    if sim.now != task.start_time:  # EXPECT[SL005]
        return False
    done_at = task.finish_time
    return done_at == 0.0  # EXPECT[SL005]


def negatives(task, sim, deadline, count):
    if math.isclose(task.finish_time, deadline):
        return True
    if sim.now >= deadline:  # relational comparison is fine
        return False
    if count == 3:  # not a time value
        return True
    return task.name == "proc3d"
