"""SL008 fixture: mutable default arguments."""

from collections import deque


def positive_list(tasks=[]):  # EXPECT[SL008]
    return tasks


def positive_dict(placements={}):  # EXPECT[SL008]
    return placements


def positive_set_call(seen=set()):  # EXPECT[SL008]
    return seen


def positive_deque(pending=deque()):  # EXPECT[SL008]
    return pending


def positive_kwonly(*, acc=[]):  # EXPECT[SL008]
    return acc


def negative_none(tasks=None):
    return list(tasks or ())


def negative_immutable(hosts=(), isa="ia32", banned=frozenset()):
    return hosts, isa, banned
