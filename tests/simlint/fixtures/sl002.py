"""SL002 fixture: global RNG state instead of seeded Generators."""

import random  # EXPECT[SL002]
import numpy as np
from numpy.random import rand


def positives(tasks):
    pick = random.choice(tasks)  # EXPECT[SL002]
    random.shuffle(tasks)  # EXPECT[SL002]
    np.random.seed(0)  # EXPECT[SL002]
    noise = np.random.normal(0.0, 1.0)  # EXPECT[SL002]
    jitter = rand(3)  # EXPECT[SL002]
    return pick, noise, jitter


def negatives(tasks, registry):
    rng = registry.stream("loadgen")
    pick = rng.choice(tasks)
    rng.shuffle(tasks)
    fresh = np.random.default_rng(42)
    seq = np.random.SeedSequence(7)
    return pick, fresh, seq
