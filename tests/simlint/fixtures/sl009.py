"""SL009 fixture: salted builtin hash() in simulation logic."""


def _stable_hash(name):
    value = 1469598103934665603
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return value


def positives(host):
    bucket = hash(host.name) % 8  # EXPECT[SL009]
    salt = hash("seed-material")  # EXPECT[SL009]
    return bucket, salt


def negatives(host, streams):
    bucket = _stable_hash(host.name) % 8
    gen = streams.stream(host.name)
    return bucket, gen
