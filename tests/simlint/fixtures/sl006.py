"""SL006 fixture: kernel-private state touched outside repro.sim."""

import heapq


def positives(sim, event, flow_done):
    sim._now = 125.0  # EXPECT[SL006]
    heapq.heappush(sim._agenda, (sim.now, 1, 0, event))  # EXPECT[SL006]
    sim._queue_event(event)  # EXPECT[SL006]
    sim._schedule(event, 5.0)  # EXPECT[SL006]
    event.callbacks = []  # EXPECT[SL006]
    event.callbacks.append(flow_done)  # EXPECT[SL006]


def negatives(sim, event, flow_done):
    now = sim.now
    timeout = sim.timeout(5.0)
    event.add_callback(flow_done)
    handle = sim.call_after(2.5, lambda: None)
    return now, timeout, handle
