"""SL010 fixture: ambient process/host entropy in simulation code."""

import os
import socket
import uuid
from os import urandom


def positives():
    token = uuid.uuid4()  # EXPECT[SL010]
    seed_bytes = urandom(8)  # EXPECT[SL010]
    debug = os.getenv("REPRO_DEBUG")  # EXPECT[SL010]
    level = os.environ["REPRO_LEVEL"]  # EXPECT[SL010]
    me = os.getpid()  # EXPECT[SL010]
    here = socket.gethostname()  # EXPECT[SL010]
    return token, seed_bytes, debug, level, me, here


def negatives(config, registry):
    seed = config.seed
    rng = registry.stream("failures")
    path = os.path.join(config.outdir, "trace.json")
    return seed, rng, path
