"""SL004 fixture: id()-based ordering or tie-breaking."""


def positives(flows, a, b):
    ranked = sorted(flows, key=id)  # EXPECT[SL004]
    flows.sort(key=lambda f: id(f))  # EXPECT[SL004]
    first = min(flows, key=id)  # EXPECT[SL004]
    if id(a) < id(b):  # EXPECT[SL004]
        return first
    return ranked


def negatives(flows, a, b):
    ranked = sorted(flows, key=lambda f: f.name)
    seen = {id(f) for f in sorted(flows, key=lambda f: f.name)}
    if id(a) in seen:  # membership, not ordering
        seen.discard(id(b))
    if id(a) == id(b):  # identity test, not ordering
        return ranked
    return seen
