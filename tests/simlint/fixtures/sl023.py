"""Fixture: SL023 — cached value returned after a yield without a re-check."""


class PlanBoard:
    def __init__(self, sim):
        self.sim = sim
        self._order_cache = None
        self._plain = None
        sim.process(self.serve(), name="serve")
        sim.process(self.relay(), name="relay")

    def serve(self):
        order = self._order_cache
        yield self.sim.timeout(2.0)
        return order  # EXPECT[SL023]

    def relay(self):
        # Negative control: self._plain is not a cache/memo slot, so
        # returning it stale is SL020's business only if written back.
        value = self._plain
        yield self.sim.timeout(2.0)
        return value
