"""SL007 fixture: sim-process coroutines yielding non-Event values."""


def positive_process(sim, peer):
    yield sim.timeout(1.0)
    yield 5  # EXPECT[SL007]
    yield  # EXPECT[SL007]
    yield [sim.event(), sim.event()]  # EXPECT[SL007]
    yield "checkpoint"  # EXPECT[SL007]


def negative_process(sim, peer):
    yield sim.timeout(1.0)
    ack = yield sim.event()
    yield peer  # another process/event object: not statically wrong
    return ack


def negative_plain_generator(items):
    # Not a sim process (never yields an event factory call): a plain
    # data generator may yield whatever it likes.
    for item in items:
        yield item.cost
    yield 0
