"""Fixture: SL021 — shared container iterated across a yield while mutated."""


class Registry:
    def __init__(self, sim):
        self.sim = sim
        self.jobs = {}
        sim.process(self.scan(), name="scan")
        sim.process(self.reap(), name="reap")

    def scan(self):
        for name, job in self.jobs.items():  # EXPECT[SL021]
            yield self.sim.timeout(1.0)
            job.poke(name)

    def reap(self):
        while True:
            yield self.sim.timeout(9.0)
            # Negative control: iterating a sorted() snapshot is fine
            # even though this loop also yields.
            for name in sorted(self.jobs):
                done = self.jobs[name].done
                yield self.sim.timeout(0.1)
                if done:
                    self.jobs.pop(name, None)
