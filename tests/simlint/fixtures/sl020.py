"""Fixture: SL020 — stale read-modify-write on shared state across a yield."""


class Tally:
    def __init__(self, sim):
        self.sim = sim
        self.total = 0.0
        self.slots = {}
        sim.process(self.accumulate(), name="tally")
        sim.process(self.relabel(), name="relabel")
        sim.process(self.refresh(), name="refresh")

    def accumulate(self):
        snapshot = self.total
        yield self.sim.timeout(5.0)
        self.total = snapshot + 1.0  # EXPECT[SL020]

    def relabel(self):
        slots = self.slots
        yield self.sim.timeout(1.0)
        slots["owner"] = "late"  # EXPECT[SL020]

    def refresh(self):
        # Negative control: the guard re-reads self.slots after the
        # yield, so the write-back is not flagged.
        count = self.slots.get("n", 0)
        yield self.sim.timeout(1.0)
        if "n" in self.slots:
            self.slots["n"] = count
