"""SL003 fixture: iteration over unordered sets without sorted()."""


def positives(hosts, flows):
    ready = set(hosts)
    for host in ready:  # EXPECT[SL003]
        print(host)
    for flow in {f for f in flows if f.active}:  # EXPECT[SL003]
        print(flow)
    names = frozenset(h.name for h in hosts)
    order = list(names)  # EXPECT[SL003]
    labels = ", ".join({h.isa for h in hosts})  # EXPECT[SL003]
    pairs = [x for x in ready | names]  # EXPECT[SL003]
    return order, labels, pairs


def negatives(hosts, flows):
    ready = set(hosts)
    for host in sorted(ready):
        print(host)
    if "n0" in ready:
        ready.discard("n0")
    count = len(ready)
    fastest = max(ready)  # order-insensitive reduction
    by_cluster = {h: h for h in hosts}  # dicts are insertion-ordered
    for host in by_cluster:
        print(host)
    return count, fastest
