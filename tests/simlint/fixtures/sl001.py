"""SL001 fixture: wall-clock reads in simulation code."""

import time
from datetime import datetime
from time import perf_counter as pc


def positives(sim):
    started = time.time()  # EXPECT[SL001]
    stamp = datetime.now()  # EXPECT[SL001]
    tick = time.monotonic()  # EXPECT[SL001]
    wall = pc()  # EXPECT[SL001]
    return started, stamp, tick, wall


def negatives(sim):
    started = sim.now
    later = sim.now + 5.0
    sleep_for = time.strptime  # referencing, not reading a clock
    return started, later, sleep_for
