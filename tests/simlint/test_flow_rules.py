"""The project symbol graph, CFG, and SL020–SL023 dataflow behaviour.

The fixture-based positives live in ``fixtures/sl02*.py`` and run
through ``test_rules.py`` like every other rule; this module covers
the machinery those rules sit on — process-generator reachability,
CFG shape, the re-read exoneration, and the cross-file facts that
only show up when two modules are linted together.
"""

import ast
import textwrap

from repro.simlint import build_graph, extract_symbols, lint_source
from repro.simlint.cfg import build_cfg
from repro.simlint.engine import lint_tree
from repro.simlint.symbols import single_file_graph


def graph_of(source, relpath="mod.py"):
    tree = ast.parse(textwrap.dedent(source))
    return single_file_graph(tree, relpath)


def lint(source, name="mod.py", **kwargs):
    return lint_source(textwrap.dedent(source), name, **kwargs)


class TestProcessGeneratorDetection:
    def test_spawned_method_is_a_process_generator(self):
        graph = graph_of("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    yield self.sim.timeout(1.0)
        """)
        assert "mod.py::App._run" in graph.process_generators
        assert "mod.py::App.start" not in graph.process_generators

    def test_yield_from_delegation_closes_over(self):
        graph = graph_of("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    yield self.sim.timeout(1.0)
                    yield from self._drain()

                def _drain(self):
                    yield self.sim.timeout(2.0)
        """)
        assert "mod.py::App._drain" in graph.process_generators

    def test_escaping_generator_is_seeded(self):
        # The rank-body pattern: a nested generator returned by name
        # and spawned by whoever receives it.
        graph = graph_of("""\
            def make_body(srs):
                def body(ctx):
                    yield from srs.restore(ctx)
                return body
        """)
        assert "mod.py::make_body.body" in graph.process_generators

    def test_plain_data_iterator_is_not_a_process_generator(self):
        graph = graph_of("""\
            class Table:
                def rows(self):
                    for row in self._rows:
                        yield row
        """)
        assert "mod.py::Table.rows" not in graph.process_generators

    def test_event_factory_yields_seed_without_spawn_site(self):
        graph = graph_of("""\
            def loop(sim):
                while True:
                    yield sim.timeout(1.0)
        """)
        assert "mod.py::loop" in graph.process_generators


class TestSymbolExtraction:
    def test_mutations_and_rng_draws_are_indexed(self):
        tree = ast.parse(textwrap.dedent("""\
            from numpy.random import default_rng

            class Pool:
                def __init__(self):
                    self.rng = default_rng(0)
                    self.jobs = {}

                def admit(self, job):
                    self.jobs[job.name] = job

                def evict(self, name):
                    del self.jobs[name]

                def jitter(self):
                    return self.rng.normal()
        """))
        mod = extract_symbols(tree, "pool.py")
        graph = build_graph({"pool.py": mod})
        mutators = graph.self_mutators[("Pool", "jobs")]
        names = {qual for qual, _ in mutators}
        assert names == {"pool.py::Pool.admit", "pool.py::Pool.evict"}
        assert ("Pool", "rng") in graph.rng_class_attrs

    def test_symbols_round_trip_through_json_payload(self):
        from repro.simlint.symbols import ModuleSymbols
        tree = ast.parse(textwrap.dedent("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    yield self.sim.timeout(1.0)
                    self.done.append(1)
        """))
        mod = extract_symbols(tree, "app.py")
        clone = ModuleSymbols.from_payload(mod.to_payload())
        assert clone.to_payload() == mod.to_payload()
        assert (build_graph({"app.py": clone}).digest
                == build_graph({"app.py": mod}).digest)


class TestCfg:
    def cfg(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return build_cfg(tree.body[0])

    def test_if_has_two_way_branch(self):
        nodes = self.cfg("""\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        header = nodes[0]
        assert len(header.succs) == 2

    def test_loop_edges_back_to_header(self):
        nodes = self.cfg("""\
            def f(xs):
                for x in xs:
                    use(x)
        """)
        header, body = nodes[0], nodes[1]
        assert body.idx in header.succs
        assert header.idx in body.succs

    def test_try_body_edges_to_handler(self):
        nodes = self.cfg("""\
            def f():
                try:
                    risky()
                except ValueError:
                    recover()
        """)
        handler_idxs = [n.idx for n in nodes
                        if isinstance(n.stmt, ast.ExceptHandler)]
        body_nodes = [n for n in nodes
                      if isinstance(n.stmt, ast.Expr)
                      and isinstance(n.stmt.value, ast.Call)
                      and n.stmt.value.func.id == "risky"]
        assert handler_idxs and body_nodes
        assert any(h in body_nodes[0].succs for h in handler_idxs)

    def test_yield_statement_is_marked(self):
        nodes = self.cfg("""\
            def f(sim):
                yield sim.timeout(1.0)
                done()
        """)
        assert nodes[0].has_yield
        assert not nodes[1].has_yield


class TestSl020Behaviour:
    def test_reread_after_yield_exonerates(self):
        findings = lint("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    count = self.slots.get("n", 0)
                    yield self.sim.timeout(1.0)
                    if "n" in self.slots:
                        self.slots["n"] = count
        """)
        assert findings == []

    def test_write_without_yield_in_between_is_clean(self):
        findings = lint("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    count = self.count
                    self.count = count + 1
                    yield self.sim.timeout(1.0)
        """)
        assert findings == []

    def test_value_refreshed_from_yield_is_clean(self):
        findings = lint("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    count = self.count
                    count = yield self.sim.timeout(1.0)
                    self.count = count
        """)
        assert findings == []

    def test_stale_write_in_loop_is_flagged(self):
        findings = lint("""\
            class App:
                def start(self, sim):
                    sim.process(self._run(), name="app")

                def _run(self):
                    while True:
                        backlog = self.backlog
                        yield self.sim.timeout(1.0)
                        self.backlog = backlog - 1
        """)
        assert [(f.rule, f.line) for f in findings] == [("SL020", 9)]

    def test_module_global_alias_is_tracked(self):
        findings = lint("""\
            PENDING = {}

            def drain(sim):
                queue = PENDING
                yield sim.timeout(1.0)
                queue.clear()
        """)
        assert [(f.rule, f.line) for f in findings] == [("SL020", 6)]

    def test_non_process_generator_is_not_analyzed(self):
        # Same shape as the fixture positive, but nothing spawns it
        # and it never yields an Event — a plain data generator.
        findings = lint("""\
            class Table:
                def rows(self):
                    snapshot = self.rows_cached
                    yield snapshot
                    self.rows_cached = snapshot
        """)
        assert findings == []


class TestSl021Behaviour:
    def test_snapshot_iteration_is_clean(self):
        findings = lint("""\
            class Registry:
                def __init__(self, sim):
                    sim.process(self.scan(), name="scan")
                    sim.process(self.reap(), name="reap")

                def scan(self):
                    for name in list(self.jobs):
                        yield self.sim.timeout(1.0)

                def reap(self):
                    yield self.sim.timeout(5.0)
                    self.jobs.clear()
        """)
        assert findings == []

    def test_no_yield_in_loop_body_is_clean(self):
        findings = lint("""\
            class Registry:
                def __init__(self, sim):
                    sim.process(self.scan(), name="scan")
                    sim.process(self.reap(), name="reap")

                def scan(self):
                    yield self.sim.timeout(1.0)
                    for name in self.jobs:
                        touch(name)

                def reap(self):
                    yield self.sim.timeout(5.0)
                    self.jobs.clear()
        """)
        assert findings == []

    def test_unmutated_container_is_clean(self):
        findings = lint("""\
            class Registry:
                def __init__(self, sim):
                    sim.process(self.scan(), name="scan")

                def scan(self):
                    for name in self.jobs:
                        yield self.sim.timeout(1.0)
        """)
        assert findings == []

    def test_cross_file_mutation_is_detected(self, tmp_path):
        (tmp_path / "walker.py").write_text(textwrap.dedent("""\
            class Walker:
                def __init__(self, sim, registry):
                    self.sim = sim
                    self.jobs = registry.jobs
                    sim.process(self.walk(), name="walk")

                def walk(self):
                    for job in self.jobs.values():
                        yield self.sim.timeout(1.0)
        """))
        (tmp_path / "mutator.py").write_text(textwrap.dedent("""\
            class Walker:
                def prune(self, name):
                    self.jobs.pop(name, None)
        """))
        result = lint_tree([str(tmp_path)])
        hits = [(f.path, f.rule) for f in result.findings]
        assert ("walker.py", "SL021") in hits
        # Removing the mutator file clears the finding: the facts are
        # genuinely cross-file.
        (tmp_path / "mutator.py").unlink()
        result = lint_tree([str(tmp_path)])
        assert [(f.path, f.rule) for f in result.findings] == []


class TestSl022Behaviour:
    def test_single_drawer_stream_is_clean(self):
        findings = lint("""\
            from numpy.random import default_rng

            class Loadgen:
                def __init__(self, sim):
                    self.rng = default_rng(3)
                    sim.process(self.drive(), name="drive")

                def drive(self):
                    while True:
                        yield self.sim.timeout(self.rng.exponential(9.0))
        """)
        assert findings == []

    def test_draw_outside_process_generator_is_clean(self):
        findings = lint("""\
            from numpy.random import default_rng

            class Sensor:
                def __init__(self, sim):
                    self.rng = default_rng(3)
                    sim.process(self.run(), name="run")

                def run(self):
                    while True:
                        yield self.sim.timeout(10.0)
                        self.measure()

                def measure(self):
                    return self.rng.normal()
        """)
        assert findings == []

    def test_registry_stream_attr_counts(self):
        findings = lint("""\
            class Churny:
                def __init__(self, sim, rngs):
                    self.stream = rngs.stream("churn")
                    sim.process(self.up(), name="up")
                    sim.process(self.down(), name="down")

                def up(self):
                    yield self.sim.timeout(self.stream.exponential(2.0))

                def down(self):
                    yield self.sim.timeout(self.stream.exponential(4.0))
        """)
        assert {(f.rule, f.line) for f in findings} == {
            ("SL022", 8), ("SL022", 11)}


class TestSl023Behaviour:
    def test_reread_cache_after_yield_is_clean(self):
        findings = lint("""\
            class Board:
                def __init__(self, sim):
                    sim.process(self.serve(), name="serve")

                def serve(self):
                    order = self._order_cache
                    yield self.sim.timeout(1.0)
                    order = self._order_cache
                    return order
        """)
        assert findings == []

    def test_return_before_yield_is_clean(self):
        findings = lint("""\
            class Board:
                def __init__(self, sim):
                    sim.process(self.serve(), name="serve")

                def serve(self):
                    order = self._order_cache
                    if order is not None:
                        return order
                    yield self.sim.timeout(1.0)
        """)
        assert findings == []


class TestFlowSuppression:
    def test_flow_findings_respect_line_suppression(self):
        findings = lint("""\
            class Tally:
                def __init__(self, sim):
                    sim.process(self.add(), name="add")

                def add(self):
                    total = self.total
                    yield self.sim.timeout(1.0)
                    self.total = total + 1  # simlint: ignore[SL020] — single writer
        """)
        assert findings == []
