"""Incremental cache and --jobs N behaviour of the lint engine.

The contract under test: caching and parallelism are pure speed — the
findings (down to the rendered bytes) never depend on cache state or
worker count, an edited file is re-analysed while untouched files are
served from cache, and any edit that shifts *cross-file* facts (the
project-graph digest) re-analyses everything rather than serving stale
flow findings.
"""

import shutil
import textwrap

import pytest

from repro.simlint import (
    apply_baseline,
    make_baseline,
    render_json,
)
from repro.simlint.engine import lint_tree

CLEAN = """\
    class App:
        def __init__(self, sim):
            self.sim = sim
            sim.process(self.run(), name="app")

        def run(self):
            while True:
                yield self.sim.timeout(1.0)
"""

STALE_RMW = """\
    class Meter:
        def __init__(self, sim):
            self.sim = sim
            self.total = 0
            sim.process(self.bump(), name="meter")

        def bump(self):
            total = self.total
            yield self.sim.timeout(1.0)
            self.total = total + 1
"""


@pytest.fixture
def tree(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "app.py").write_text(textwrap.dedent(CLEAN))
    (src / "meter.py").write_text(textwrap.dedent(STALE_RMW))
    (src / "util.py").write_text("def helper():\n    return 1\n")
    return src


class TestCacheRoundTrip:
    def test_cold_then_warm_is_byte_identical(self, tree, tmp_path):
        cache = tmp_path / "cache"
        cold = lint_tree([str(tree)], cache_dir=str(cache))
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.files == 3
        warm = lint_tree([str(tree)], cache_dir=str(cache))
        assert warm.cache_hits == 3
        assert warm.cache_misses == 0
        assert render_json(warm.findings) == render_json(cold.findings)
        assert [f.rule for f in warm.findings] == ["SL020"]

    def test_cache_matches_uncached_run(self, tree, tmp_path):
        cached = lint_tree([str(tree)], cache_dir=str(tmp_path / "cache"))
        plain = lint_tree([str(tree)])
        assert render_json(cached.findings) == render_json(plain.findings)

    def test_comment_edit_reanalyzes_only_that_file(self, tree, tmp_path):
        cache = tmp_path / "cache"
        lint_tree([str(tree)], cache_dir=str(cache))
        app = tree / "app.py"
        app.write_text(app.read_text() + "# touched\n")
        result = lint_tree([str(tree)], cache_dir=str(cache))
        # A trailing comment leaves the symbol summary (and so the
        # graph digest) unchanged: only the edited file's content hash
        # moved.  (An edit that shifts line numbers or symbols really
        # must re-analyze everything — cross-file messages embed both.)
        assert result.cache_misses == 1
        assert result.cache_hits == 2
        assert [f.rule for f in result.findings] == ["SL020"]

    def test_symbol_shifting_edit_invalidates_cross_file_facts(
            self, tree, tmp_path):
        cache = tmp_path / "cache"
        (tree / "walker.py").write_text(textwrap.dedent("""\
            class Walker:
                def __init__(self, sim):
                    self.sim = sim
                    self.jobs = {}
                    sim.process(self.walk(), name="walk")

                def walk(self):
                    for job in self.jobs.values():
                        yield self.sim.timeout(1.0)
        """))
        before = lint_tree([str(tree)], cache_dir=str(cache))
        assert ("walker.py", "SL021") not in {
            (f.path, f.rule) for f in before.findings}
        # A *different file* grows a mutator of Walker.jobs: walker.py
        # itself is untouched, but its cached findings must not be
        # served — the graph digest changed.
        (tree / "pruner.py").write_text(textwrap.dedent("""\
            class Walker:
                def prune(self, name):
                    self.jobs.pop(name, None)
        """))
        after = lint_tree([str(tree)], cache_dir=str(cache))
        assert ("walker.py", "SL021") in {
            (f.path, f.rule) for f in after.findings}

    def test_corrupt_cache_entries_are_misses(self, tree, tmp_path):
        cache = tmp_path / "cache"
        cold = lint_tree([str(tree)], cache_dir=str(cache))
        for path in (cache / "v1" / "find").iterdir():
            path.write_text("{not json")
        recovered = lint_tree([str(tree)], cache_dir=str(cache))
        assert recovered.cache_misses == 3
        assert render_json(recovered.findings) == render_json(cold.findings)

    def test_deleting_cache_changes_nothing_but_speed(self, tree, tmp_path):
        cache = tmp_path / "cache"
        first = lint_tree([str(tree)], cache_dir=str(cache))
        shutil.rmtree(cache)
        second = lint_tree([str(tree)], cache_dir=str(cache))
        assert render_json(first.findings) == render_json(second.findings)


class TestJobs:
    def test_parallel_findings_are_byte_identical(self, tree):
        serial = lint_tree([str(tree)], jobs=1)
        parallel = lint_tree([str(tree)], jobs=4)
        assert render_json(parallel.findings) == render_json(serial.findings)

    def test_parallel_with_cache(self, tree, tmp_path):
        cache = tmp_path / "cache"
        cold = lint_tree([str(tree)], jobs=4, cache_dir=str(cache))
        warm = lint_tree([str(tree)], jobs=4, cache_dir=str(cache))
        assert cold.cache_misses == 3
        assert warm.cache_hits == 3
        assert render_json(warm.findings) == render_json(cold.findings)

    def test_baseline_round_trip_under_jobs(self, tree):
        serial = lint_tree([str(tree)], jobs=1)
        doc = make_baseline(serial.findings)
        parallel = lint_tree([str(tree)], jobs=4)
        fresh, grandfathered = apply_baseline(parallel.findings, doc)
        # Every parallel finding matches the serially-built baseline:
        # fingerprints are content-derived, not run-order-derived.
        assert fresh == []
        assert len(grandfathered) == len(serial.findings) == 1

    def test_select_and_ignore_apply_in_workers(self, tree):
        result = lint_tree([str(tree)], jobs=4, ignore=["SL020"])
        assert result.findings == []
