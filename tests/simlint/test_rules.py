"""Per-rule fixture checks.

Each ``fixtures/slNNN.py`` module is a lint *input*: lines a rule must
flag carry an ``# EXPECT[SLNNN]`` marker, everything else (the negative
examples) must stay silent under the *full* rule set.  The test runs
all rules over each fixture and requires the flagged ``(line, rule)``
pairs to equal the markers exactly — so every rule has demonstrated
true positives AND demonstrated non-firing on the look-alike negatives.
"""

import re
from pathlib import Path

import pytest

from repro.simlint import (
    ALL_RULE_IDS,
    PARSE_ERROR_ID,
    RULES,
    lint_paths,
    lint_source,
)
from repro.simlint.findings import SEVERITIES

FIXTURES = Path(__file__).parent / "fixtures"
EXPECT_RE = re.compile(r"#\s*EXPECT\[([A-Z0-9,]+)\]")

RULE_IDS_WITH_FIXTURES = tuple(
    rule_id for rule_id in ALL_RULE_IDS if rule_id != PARSE_ERROR_ID)


def expected_pairs(path: Path):
    pairs = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = EXPECT_RE.search(text)
        if match:
            for rule_id in match.group(1).split(","):
                pairs.add((lineno, rule_id))
    return pairs


def test_every_rule_has_a_fixture():
    for rule_id in RULE_IDS_WITH_FIXTURES:
        assert (FIXTURES / f"{rule_id.lower()}.py").is_file(), (
            f"missing fixture module for {rule_id}")


def test_rule_metadata_is_complete():
    for rule in RULES.values():
        assert re.fullmatch(r"SL\d{3}", rule.id)
        assert rule.severity in SEVERITIES
        assert rule.summary and rule.hint
        assert callable(rule.check)


@pytest.mark.parametrize("rule_id", RULE_IDS_WITH_FIXTURES)
def test_fixture_findings_match_expect_markers(rule_id):
    path = FIXTURES / f"{rule_id.lower()}.py"
    expected = expected_pairs(path)
    assert any(marker_rule == rule_id for _, marker_rule in expected), (
        f"{path.name} declares no positive for {rule_id}")
    findings = lint_source(path.read_text(), path.name)
    actual = {(f.line, f.rule) for f in findings}
    assert actual == expected


@pytest.mark.parametrize("rule_id", RULE_IDS_WITH_FIXTURES)
def test_select_restricts_to_one_rule(rule_id):
    path = FIXTURES / f"{rule_id.lower()}.py"
    findings = lint_paths([str(path)], select=[rule_id])
    assert findings, f"{rule_id} found nothing in its own fixture"
    assert {f.rule for f in findings} == {rule_id}
    assert all(f.severity == RULES[rule_id].severity for f in findings)


def test_syntax_error_fixture_reports_sl000():
    path = FIXTURES / "sl000.py"
    findings = lint_source(path.read_text(), path.name)
    assert [f.rule for f in findings] == [PARSE_ERROR_ID]
    assert "syntax error" in findings[0].message


def test_fixture_tree_trips_every_rule():
    findings = lint_paths([str(FIXTURES)])
    assert {f.rule for f in findings} == set(ALL_RULE_IDS)


def test_findings_are_sorted_and_fingerprinted():
    findings = lint_paths([str(FIXTURES)])
    assert findings == sorted(findings)
    keys = {(f.path, f.rule, f.fingerprint) for f in findings}
    assert len(keys) == len(findings), "fingerprints must be unique per file"
