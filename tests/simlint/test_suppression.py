"""Suppression-comment behaviour: per-line, per-file, with rule lists."""

import textwrap

from repro.simlint import lint_source


def lint(src, name="mod.py", **kwargs):
    return lint_source(textwrap.dedent(src), name, **kwargs)


VIOLATION = """\
    import time

    def run(sim):
        return time.time()
"""


def test_unsuppressed_baseline_case():
    findings = lint(VIOLATION)
    assert [f.rule for f in findings] == ["SL001"]


def test_line_suppression_with_rule_list():
    findings = lint("""\
        import time

        def run(sim):
            return time.time()  # simlint: ignore[SL001]
    """)
    assert findings == []


def test_line_suppression_with_justification_text():
    findings = lint("""\
        import time

        def run(sim):
            return time.time()  # simlint: ignore[SL001] — harness wall time
    """)
    assert findings == []


def test_line_suppression_without_rule_list_suppresses_all():
    findings = lint("""\
        import time

        def run(sim, items=[]):  # simlint: ignore
            return time.time()  # simlint: ignore
    """)
    assert findings == []


def test_line_suppression_for_other_rule_does_not_apply():
    findings = lint("""\
        import time

        def run(sim):
            return time.time()  # simlint: ignore[SL003]
    """)
    assert [f.rule for f in findings] == ["SL001"]


def test_suppression_only_covers_its_own_line():
    findings = lint("""\
        import time

        def run(sim):
            a = time.time()  # simlint: ignore[SL001]
            b = time.time()
            return a, b
    """)
    assert [(f.rule, f.line) for f in findings] == [("SL001", 5)]


def test_file_suppression_with_rule_list():
    findings = lint("""\
        # simlint: ignore-file[SL001] — benchmark harness, wall time is the point
        import time

        def run(sim, items=[]):
            return time.time()
    """)
    assert [f.rule for f in findings] == ["SL008"]


def test_file_suppression_without_rule_list_suppresses_everything():
    findings = lint("""\
        # simlint: ignore-file
        import time

        def run(sim, items=[]):
            return time.time()
    """)
    assert findings == []


def test_multiple_rules_in_one_comment():
    findings = lint("""\
        import time

        def run(sim, items=[]):  # simlint: ignore[SL008, SL001]
            return time.time()
    """)
    assert [f.rule for f in findings] == ["SL001"]
    assert findings[0].line == 4


def test_suppressing_parse_errors_is_possible_per_file():
    findings = lint("""\
        # simlint: ignore-file[SL000]
        def broken(:
    """)
    assert findings == []


# --- multi-line statements -------------------------------------------------
#
# A finding inside a spread-out call is reported at the *inner* node's
# line; the suppression comment may sit on any line of the statement.

MULTILINE_VIOLATION = """\
    def order(hosts):
        names = {h.name for h in hosts}
        return pick(
            list(names),
            fallback=None)
"""


def test_multiline_statement_unsuppressed():
    findings = lint(MULTILINE_VIOLATION)
    assert [(f.rule, f.line) for f in findings] == [("SL003", 4)]


def test_suppression_on_first_line_of_multiline_statement():
    findings = lint("""\
        def order(hosts):
            names = {h.name for h in hosts}
            return pick(  # simlint: ignore[SL003] — copy is order-stable
                list(names),
                fallback=None)
    """)
    assert findings == []


def test_suppression_on_last_line_of_multiline_statement():
    findings = lint("""\
        def order(hosts):
            names = {h.name for h in hosts}
            return pick(
                list(names),
                fallback=None)  # simlint: ignore[SL003]
    """)
    assert findings == []


def test_multiline_suppression_does_not_leak_to_neighbours():
    findings = lint("""\
        def order(hosts):
            names = {h.name for h in hosts}
            first = pick(  # simlint: ignore[SL003]
                list(names),
                fallback=None)
            second = pick(
                list(names),
                fallback=None)
            return first, second
    """)
    assert [(f.rule, f.line) for f in findings] == [("SL003", 7)]


def test_multiline_suppression_respects_rule_list():
    findings = lint("""\
        def order(hosts):
            names = {h.name for h in hosts}
            return pick(  # simlint: ignore[SL001]
                list(names),
                fallback=None)
    """)
    assert [(f.rule, f.line) for f in findings] == [("SL003", 4)]


def test_compound_header_suppression_covers_header_only():
    findings = lint("""\
        def scan(hosts):
            names = {h.name for h in hosts}
            for name in list(  # simlint: ignore[SL003]
                    names):
                use(list(names))
    """)
    assert [(f.rule, f.line) for f in findings] == [("SL003", 5)]
