"""Tests for COPs, mappers, the distributed binder and the launcher."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed, heterogeneous_testbed
from repro.gis import GridInformationService, SoftwarePackage, SoftwareRegistry
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.cop import (
    ClusterMapper,
    CompilationPackage,
    ConfigurableObjectProgram,
    FastestSubsetMapper,
    MapperError,
)
from repro.binder import (
    BINDER_PACKAGE,
    BinderError,
    DistributedBinder,
    Launcher,
    MPI_STARTUP_SECONDS,
)


def build_env(grid_fn=fig3_testbed, packages=("scalapack",)):
    sim = Simulator()
    grid = grid_fn(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    software = SoftwareRegistry()
    names = [h.name for h in grid.all_hosts()]
    software.install_everywhere(SoftwarePackage(name=BINDER_PACKAGE), names)
    for pkg in packages:
        software.install_everywhere(SoftwarePackage(name=pkg), names)
    return sim, grid, gis, nws, software


def simple_cop(n_procs=4, required=("scalapack",)):
    model = AnalyticComponentModel(mflop_fn=lambda n: n ** 2 / 1e6)
    return ConfigurableObjectProgram(
        name="demo",
        body_factory=lambda n: None,
        mapper=FastestSubsetMapper(),
        model=model,
        package=CompilationPackage(required_packages=tuple(required)),
        n_procs=n_procs,
    )


class TestMappers:
    def test_fastest_subset_prefers_fast_cluster(self):
        sim, grid, gis, nws, software = build_env()
        hosts = FastestSubsetMapper().map(gis, nws, 4)
        assert all(name.startswith("utk.") for name in hosts)

    def test_fastest_subset_respects_load(self):
        sim, grid, gis, nws, software = build_env()
        # Heavy load on every UTK node makes UIUC the better choice.
        for host in grid.clusters["utk"]:
            host.add_background_load(8)
        hosts = FastestSubsetMapper().map(gis, nws, 4)
        assert all(name.startswith("uiuc.") for name in hosts)

    def test_fastest_subset_excludes(self):
        sim, grid, gis, nws, software = build_env()
        exclude = [h.name for h in grid.clusters["utk"]]
        hosts = FastestSubsetMapper().map(gis, nws, 4, exclude=exclude)
        assert all(name.startswith("uiuc.") for name in hosts)

    def test_fastest_subset_insufficient_hosts(self):
        sim, grid, gis, nws, software = build_env()
        with pytest.raises(MapperError):
            FastestSubsetMapper().map(gis, nws, 100)

    def test_cluster_mapper_stays_in_one_cluster(self):
        sim, grid, gis, nws, software = build_env()
        hosts = ClusterMapper().map(gis, nws, 6)
        clusters = {name.split(".")[0] for name in hosts}
        assert len(clusters) == 1
        assert clusters == {"uiuc"}  # only cluster with >= 6 hosts... no,
        # utk has 4 hosts so 6 procs must land on uiuc.

    def test_cluster_mapper_prefers_aggregate_speed(self):
        sim, grid, gis, nws, software = build_env()
        hosts = ClusterMapper().map(gis, nws, 4)
        # 4x 373 Mflop/s UTK beats 4x 180 Mflop/s UIUC.
        assert all(name.startswith("utk.") for name in hosts)

    def test_cluster_mapper_flips_under_load(self):
        sim, grid, gis, nws, software = build_env()
        for host in grid.clusters["utk"]:
            host.add_background_load(8)
        hosts = ClusterMapper().map(gis, nws, 4)
        assert all(name.startswith("uiuc.") for name in hosts)

    def test_cluster_mapper_no_feasible_cluster(self):
        sim, grid, gis, nws, software = build_env()
        with pytest.raises(MapperError):
            ClusterMapper().map(gis, nws, 9)

    def test_mapper_validates_n_procs(self):
        sim, grid, gis, nws, software = build_env()
        with pytest.raises(MapperError):
            FastestSubsetMapper().map(gis, nws, 0)
        with pytest.raises(MapperError):
            ClusterMapper().map(gis, nws, 0)


class TestBinder:
    def test_bind_succeeds_with_software_present(self):
        sim, grid, gis, nws, software = build_env()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        cop = simple_cop()
        ev = binder.bind(cop, ["utk.n0", "utk.n1"])
        sim.run(stop_event=ev)
        report = ev.value
        assert report.seconds > 0
        assert set(report.per_host_seconds) == {"utk.n0", "utk.n1"}

    def test_bind_missing_library_fails_fast(self):
        sim, grid, gis, nws, software = build_env(packages=())
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        with pytest.raises(BinderError, match="scalapack"):
            binder.bind(simple_cop(), ["utk.n0"])

    def test_bind_unknown_host_fails(self):
        sim, grid, gis, nws, software = build_env()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        with pytest.raises(BinderError, match="not registered"):
            binder.bind(simple_cop(), ["mars.n0"])

    def test_bind_empty_schedule_fails(self):
        sim, grid, gis, nws, software = build_env()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        with pytest.raises(BinderError):
            binder.bind(simple_cop(), [])

    def test_bind_slower_on_loaded_node(self):
        sim, grid, gis, nws, software = build_env()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        ev = binder.bind(simple_cop(), ["utk.n1"])
        sim.run(stop_event=ev)
        unloaded = ev.value.per_host_seconds["utk.n1"]

        sim2, grid2, gis2, nws2, software2 = build_env()
        grid2.clusters["utk"][1].add_background_load(4)
        binder2 = DistributedBinder(sim2, grid2.topology, gis2, software2,
                                    package_source="utk.n0")
        ev2 = binder2.bind(simple_cop(), ["utk.n1"])
        sim2.run(stop_event=ev2)
        assert ev2.value.per_host_seconds["utk.n1"] > unloaded

    def test_bind_heterogeneous_targets(self):
        """The new binder's whole point: one bind spanning ISAs (§2)."""
        sim, grid, gis, nws, software = build_env(
            grid_fn=heterogeneous_testbed)
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="ia32.n0")
        ev = binder.bind(simple_cop(), ["ia32.n0", "ia64.n0"])
        sim.run(stop_event=ev)
        assert set(ev.value.isas.values()) == {"ia32", "ia64"}

    def test_wan_bind_costs_more_than_lan(self):
        sim, grid, gis, nws, software = build_env()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        lan = binder.bind(simple_cop(), ["utk.n1"])
        sim.run(stop_event=lan)
        lan_seconds = lan.value.seconds

        sim2, grid2, gis2, nws2, software2 = build_env()
        binder2 = DistributedBinder(sim2, grid2.topology, gis2, software2,
                                    package_source="utk.n0")
        wan = binder2.bind(simple_cop(), ["uiuc.n0"])
        sim2.run(stop_event=wan)
        assert wan.value.seconds > lan_seconds


class TestLauncher:
    def test_launch_pays_mpi_sync_and_runs(self):
        sim, grid, gis, nws, software = build_env()
        launcher = Launcher(sim, grid.topology, gis)
        cop = simple_cop(n_procs=2)
        record = []

        from repro.microgrid import ARCH_PIII_933

        def body(ctx):
            yield ctx.compute(ARCH_PIII_933.mflops)  # 1 s on a UTK node
            record.append((ctx.rank, ctx.sim.now))

        ev = launcher.launch(cop, ["utk.n0", "utk.n1"], body)
        sim.run(stop_event=ev)
        handle = ev.value
        sim.run(stop_event=handle.finished)
        assert handle.started_at == pytest.approx(MPI_STARTUP_SECONDS)
        assert handle.finished.triggered
        assert sorted(r for r, _ in record) == [0, 1]
        assert all(t == pytest.approx(MPI_STARTUP_SECONDS + 1.0)
                   for _, t in record)

    def test_launch_empty_hosts_rejected(self):
        sim, grid, gis, nws, software = build_env()
        launcher = Launcher(sim, grid.topology, gis)
        with pytest.raises(ValueError):
            launcher.launch(simple_cop(), [], lambda ctx: None)

    def test_cop_predicted_seconds(self):
        cop = simple_cop(n_procs=4)
        from repro.microgrid import ARCH_PIII_933
        t1 = cop.predicted_seconds(3000, ARCH_PIII_933, n_procs=1)
        t4 = cop.predicted_seconds(3000, ARCH_PIII_933)
        assert t1 == pytest.approx(4 * t4)
        with pytest.raises(ValueError):
            cop.predicted_seconds(3000, ARCH_PIII_933, n_procs=0)


class TestDeadHosts:
    def test_launcher_refuses_dead_host_synchronously(self):
        from repro.microgrid import HostFailure
        sim, grid, gis, nws, software = build_env()
        grid.clusters["utk"][1].fail()
        launcher = Launcher(sim, grid.topology, gis)
        with pytest.raises(HostFailure):
            launcher.launch(simple_cop(n_procs=2), ["utk.n0", "utk.n1"],
                            lambda ctx: None)

    def test_bind_refuses_dead_host(self):
        from repro.microgrid import HostFailure
        sim, grid, gis, nws, software = build_env()
        grid.clusters["utk"][1].fail()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n0")
        ev = binder.bind(simple_cop(), ["utk.n0", "utk.n1"])
        ev.defused = True
        sim.run(until=10.0)
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, HostFailure)

    def test_sibling_local_binders_reaped_after_failure(self):
        """Two targets die mid-bind at different points in their local
        binds.  The first failure fails the bind; the second local
        binder must be reaped, not left to fail with no waiter (which
        would abort the whole simulation)."""
        sim, grid, gis, nws, software = build_env()
        binder = DistributedBinder(sim, grid.topology, gis, software,
                                   package_source="utk.n3")
        ev = binder.bind(simple_cop(), ["utk.n0", "uiuc.n0"])
        ev.defused = True
        sim.call_after(0.1, grid.clusters["utk"][0].fail)
        sim.call_after(0.1, grid.clusters["uiuc"][0].fail)
        sim.run(until=5000.0)  # must not raise from an orphaned sibling
        assert ev.triggered and not ev.ok
