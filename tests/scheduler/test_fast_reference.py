"""Fast engine vs reference oracle: exact schedule equivalence.

The incremental array-backed builder behind ``HEURISTICS`` must be a
pure optimization: for every workflow shape, grid, and heuristic it has
to produce the same placements with the same estimated times — bit-for-
bit, not approximately — as the retained pure-Python oracle in
``REFERENCE_HEURISTICS``.  Hypothesis drives randomized layered and
bag-of-tasks workflows over heterogeneous multi-cluster grids.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis import GridInformationService
from repro.microgrid import Architecture, Cluster, Grid
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import (
    HEURISTICS,
    REFERENCE_HEURISTICS,
    Workflow,
    WorkflowComponent,
    build_rank_matrix,
)
from repro.sim import Simulator

HEURISTIC_NAMES = sorted(HEURISTICS)


def heterogeneous_grid(rng, n_clusters, hosts_per_cluster):
    """Chained clusters with randomized per-cluster speeds."""
    sim = Simulator()
    grid = Grid(sim)
    clusters = []
    for c in range(n_clusters):
        mflops = float(rng.uniform(100, 800))
        arch = Architecture(name=f"a{c}", mflops=mflops)
        clusters.append(grid.add_cluster(Cluster(
            sim, grid.topology, f"c{c}", arch=arch,
            n_hosts=hosts_per_cluster,
            link_bandwidth=float(rng.uniform(50e6, 200e6)),
            link_latency=1e-4, site=f"S{c}")))
    for a, b in zip(clusters, clusters[1:]):
        grid.topology.add_link(a.switch, b.switch,
                               bandwidth=float(rng.uniform(2e6, 20e6)),
                               latency=float(rng.uniform(0.005, 0.05)))
    return sim, grid


def layered_workflow(rng, depth, width):
    """Alternating serial/parallel layers with random weights/volumes."""
    wf = Workflow("layered")
    previous = None
    for level in range(depth):
        n_tasks = 1 if level % 2 == 0 else int(rng.integers(2, width + 1))
        mflop = float(rng.uniform(200, 4000)) * n_tasks
        name = f"l{level}"
        wf.add_component(WorkflowComponent(
            name=name,
            model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m),
            problem_size=1.0,
            n_tasks=n_tasks,
            input_bytes_per_task=float(rng.uniform(0, 8e6)),
        ))
        if previous is not None:
            wf.add_dependence(previous, name)
        previous = name
    return wf


def bag_workflow(rng, n_components):
    """Independent components, some parallelizable, heavy-tailed sizes."""
    wf = Workflow("bag")
    for i in range(n_components):
        mflop = float(rng.pareto(1.3) * 600 + 100)
        wf.add_component(WorkflowComponent(
            name=f"t{i}",
            model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m),
            problem_size=1.0,
            n_tasks=int(rng.integers(1, 5)),
            input_bytes_per_task=float(rng.uniform(0, 20e6)),
        ))
    return wf


def diamond_workflow(rng, width):
    """entry -> two parallel branches -> join: exercises multi-pred
    data-ready vectors (the max over predecessor components)."""
    wf = Workflow("diamond")

    def add(name, n_tasks):
        mflop = float(rng.uniform(200, 2000)) * n_tasks
        wf.add_component(WorkflowComponent(
            name=name,
            model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m),
            problem_size=1.0, n_tasks=n_tasks,
            input_bytes_per_task=float(rng.uniform(0, 5e6))))

    add("entry", 1)
    add("left", int(rng.integers(2, width + 1)))
    add("right", int(rng.integers(2, width + 1)))
    add("join", 1)
    wf.add_dependence("entry", "left")
    wf.add_dependence("entry", "right")
    wf.add_dependence("left", "join")
    wf.add_dependence("right", "join")
    return wf


def build_case(seed, shape):
    rng = np.random.default_rng(seed)
    sim, grid = heterogeneous_grid(rng, n_clusters=int(rng.integers(2, 4)),
                                   hosts_per_cluster=int(rng.integers(2, 5)))
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    if shape == "layered":
        wf = layered_workflow(rng, depth=int(rng.integers(2, 6)), width=6)
    elif shape == "bag":
        wf = bag_workflow(rng, n_components=int(rng.integers(3, 12)))
    else:
        wf = diamond_workflow(rng, width=6)
    hosts = [r.name for r in gis.resources()]
    sources = {c.name: [hosts[int(rng.integers(len(hosts)))]]
               for c in wf.components() if not wf.predecessors(c.name)}
    matrix = build_rank_matrix(wf, gis, nws, data_sources=sources)
    return wf, matrix, nws


def assert_identical(fast, reference, label):
    assert set(fast.placements) == set(reference.placements), label
    for name, p in fast.placements.items():
        q = reference.placements[name]
        assert p.resource == q.resource, (label, name)
        assert p.est_start == q.est_start, (label, name)
        assert p.est_finish == q.est_finish, (label, name)
    assert fast.makespan == reference.makespan, label
    assert fast.heuristic == reference.heuristic, label


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       shape=st.sampled_from(["layered", "bag", "diamond"]),
       name=st.sampled_from(HEURISTIC_NAMES))
def test_property_fast_matches_reference(seed, shape, name):
    wf, matrix, nws = build_case(seed, shape)
    if name == "random":
        fast = HEURISTICS[name](wf, matrix, nws,
                                rng=np.random.default_rng(seed))
        reference = REFERENCE_HEURISTICS[name](
            wf, matrix, nws, rng=np.random.default_rng(seed))
    else:
        fast = HEURISTICS[name](wf, matrix, nws)
        reference = REFERENCE_HEURISTICS[name](wf, matrix, nws)
    assert_identical(fast, reference, (name, shape, seed))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_all_six_on_one_case(seed):
    """One randomized case, every registry entry — catches heuristics
    whose shared-state assumptions only break after another ran."""
    wf, matrix, nws = build_case(seed, "layered")
    for name in HEURISTIC_NAMES:
        fast = HEURISTICS[name](wf, matrix, nws)
        reference = REFERENCE_HEURISTICS[name](wf, matrix, nws)
        assert_identical(fast, reference, (name, seed))


def test_registries_cover_same_heuristics():
    assert set(HEURISTICS) == set(REFERENCE_HEURISTICS)
    assert set(HEURISTICS) == {"min-min", "max-min", "sufferage",
                               "random", "fifo", "heft"}
