"""Tests for ranking and the scheduling heuristics."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry, Simulator
from repro.microgrid import fig3_testbed, heterogeneous_testbed
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import (
    GradsWorkflowScheduler,
    HEURISTICS,
    ScheduleError,
    Workflow,
    WorkflowComponent,
    build_rank_matrix,
    fifo_schedule,
    heft_schedule,
    max_min,
    min_min,
    random_schedule,
    sufferage,
)


def env(grid_fn=fig3_testbed):
    sim = Simulator()
    grid = grid_fn(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, gis, nws


def comp(name, mflop_total=1000.0, n_tasks=1, in_bytes=0.0,
         memory_required=0.0):
    return WorkflowComponent(
        name=name,
        model=AnalyticComponentModel(
            mflop_fn=lambda n, m=mflop_total: m,
            memory_fn=lambda n, mem=memory_required: mem),
        problem_size=1.0,
        n_tasks=n_tasks,
        input_bytes_per_task=in_bytes,
    )


def fan_workflow(width=8, mflop=1000.0):
    """entry -> width parallel tasks -> exit (EMAN-shaped)."""
    wf = Workflow("fan")
    wf.add_component(comp("entry", mflop_total=mflop / 10))
    wf.add_component(comp("par", mflop_total=mflop * width, n_tasks=width))
    wf.add_component(comp("exit", mflop_total=mflop / 10))
    wf.add_dependence("entry", "par")
    wf.add_dependence("par", "exit")
    return wf


class TestRankMatrix:
    def test_shape_and_finiteness(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=4)
        matrix = build_rank_matrix(wf, gis, nws)
        assert matrix.shape == (6, 12)  # 1 + 4 + 1 tasks, 12 hosts
        assert np.isfinite(matrix.values).all()

    def test_faster_resource_lower_rank(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=2)
        matrix = build_rank_matrix(wf, gis, nws)
        names = [r.name for r in matrix.resources]
        utk = names.index("utk.n0")
        uiuc = names.index("uiuc.n0")
        assert matrix.values[0, utk] < matrix.values[0, uiuc]

    def test_ineligible_resource_infinite_rank(self):
        sim, grid, gis, nws = env()
        wf = Workflow("mem")
        wf.add_component(comp("big", memory_required=1 << 62))
        matrix = build_rank_matrix(wf, gis, nws)
        assert np.isinf(matrix.values).all()
        assert matrix.eligible_resources(0) == []

    def test_dcost_included_with_data_sources(self):
        sim, grid, gis, nws = env()
        wf = Workflow("data")
        wf.add_component(comp("c", in_bytes=50e6))
        bare = build_rank_matrix(wf, gis, nws)
        with_data = build_rank_matrix(
            wf, gis, nws, data_sources={"c": ["utk.n0"]})
        names = [r.name for r in with_data.resources]
        uiuc = names.index("uiuc.n0")
        utk = names.index("utk.n1")
        # pulling 50 MB across the 5 MB/s WAN adds ~10 s to UIUC's rank
        assert with_data.values[0, uiuc] - bare.values[0, uiuc] > 5.0
        # while a LAN pull is much cheaper
        assert with_data.values[0, utk] - bare.values[0, utk] < 5.0

    def test_weights_scale_components(self):
        sim, grid, gis, nws = env()
        wf = Workflow("w")
        wf.add_component(comp("c", in_bytes=10e6))
        sources = {"c": ["utk.n0"]}
        m11 = build_rank_matrix(wf, gis, nws, data_sources=sources)
        m10 = build_rank_matrix(wf, gis, nws, data_sources=sources, w2=0.0)
        m01 = build_rank_matrix(wf, gis, nws, data_sources=sources, w1=0.0)
        assert np.allclose(m11.values, m10.values + m01.values)

    def test_negative_weight_rejected(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(2)
        with pytest.raises(ValueError):
            build_rank_matrix(wf, gis, nws, w1=-1.0)

    def test_no_resources_rejected(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(2)
        with pytest.raises(ValueError):
            build_rank_matrix(wf, GridInformationService(), nws)


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", [min_min, max_min, sufferage,
                                           fifo_schedule, heft_schedule])
    def test_schedule_is_complete_and_consistent(self, heuristic):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=8)
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = heuristic(wf, matrix, nws)
        assert len(schedule.placements) == len(wf.tasks())
        # no two tasks overlap on one resource
        for record in matrix.resources:
            placements = schedule.tasks_on(record.name)
            for a, b in zip(placements, placements[1:]):
                assert b.est_start >= a.est_finish - 1e-9
        # dependences respected in estimated timelines
        for t in wf.tasks():
            p = schedule.placements[t.name]
            for pred in wf.predecessors(t.component.name):
                for i in range(pred.n_tasks):
                    pp = schedule.placements[f"{pred.name}[{i}]"]
                    assert p.est_start >= pp.est_finish - 1e-9

    def test_min_min_uses_fast_hosts(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=4)
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = min_min(wf, matrix, nws)
        used = {p.resource for p in schedule.placements.values()}
        assert any(name.startswith("utk.") for name in used)

    def test_heuristics_spread_wide_fan(self):
        """12 independent equal tasks across 12 hosts must not pile onto
        one machine under any informed heuristic."""
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=12)
        matrix = build_rank_matrix(wf, gis, nws)
        for heuristic in (min_min, max_min, sufferage):
            schedule = heuristic(wf, matrix, nws)
            used = {schedule.placements[f"par[{i}]"].resource
                    for i in range(12)}
            assert len(used) >= 6, schedule.heuristic

    def test_informed_heuristics_beat_random(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=10)
        matrix = build_rank_matrix(wf, gis, nws)
        rng = RngRegistry(seed=11).stream("sched")
        random_spans = [random_schedule(wf, matrix, nws, rng).makespan
                        for _ in range(10)]
        informed = min(h(wf, matrix, nws).makespan
                       for h in (min_min, max_min, sufferage))
        assert informed <= min(random_spans) + 1e-9
        assert informed < float(np.mean(random_spans))

    def test_informed_heuristics_beat_fifo_on_heterogeneous_grid(self):
        """FIFO ignores speeds; on a 2x-heterogeneous grid the informed
        heuristics must win."""
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=8)
        matrix = build_rank_matrix(wf, gis, nws)
        fifo_span = fifo_schedule(wf, matrix, nws).makespan
        informed = min(h(wf, matrix, nws).makespan
                       for h in (min_min, max_min, sufferage))
        assert informed <= fifo_span + 1e-9

    def test_sufferage_prefers_contested_resources(self):
        """Sufferage's defining behaviour: tasks that lose a lot without
        their best host get it first."""
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=4)
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = sufferage(wf, matrix, nws)
        assert schedule.heuristic == "sufferage"
        assert schedule.makespan > 0

    def test_ineligible_everywhere_raises(self):
        sim, grid, gis, nws = env()
        wf = Workflow("mem")
        wf.add_component(comp("big", memory_required=1 << 62))
        matrix = build_rank_matrix(wf, gis, nws)
        for heuristic in (min_min, max_min, sufferage, fifo_schedule,
                          heft_schedule):
            with pytest.raises(ScheduleError):
                heuristic(wf, matrix, nws)

    def test_random_schedule_deterministic_with_seed(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=6)
        matrix = build_rank_matrix(wf, gis, nws)
        s1 = random_schedule(wf, matrix, nws,
                             RngRegistry(seed=5).stream("x"))
        s2 = random_schedule(wf, matrix, nws,
                             RngRegistry(seed=5).stream("x"))
        assert {k: v.resource for k, v in s1.placements.items()} == \
               {k: v.resource for k, v in s2.placements.items()}

    def test_random_baseline_registered(self):
        """Regression: sweeps iterating HEURISTICS silently skipped the
        documented random baseline because it was missing from the
        registry."""
        assert "random" in HEURISTICS
        assert HEURISTICS["random"] is random_schedule

    def test_random_registry_entry_is_deterministic(self):
        """The registry call signature (no rng) must still be stable."""
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=5)
        matrix = build_rank_matrix(wf, gis, nws)
        s1 = HEURISTICS["random"](wf, matrix, nws)
        s2 = HEURISTICS["random"](wf, matrix, nws)
        assert {k: v.resource for k, v in s1.placements.items()} == \
               {k: v.resource for k, v in s2.placements.items()}
        assert s1.heuristic == "random"

    def test_every_registry_entry_runs_with_common_signature(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=3)
        matrix = build_rank_matrix(wf, gis, nws)
        for name, heuristic in HEURISTICS.items():
            schedule = heuristic(wf, matrix, nws)
            assert len(schedule.placements) == 5, name


class TestComponentResources:
    def test_ordered_by_task_index_beyond_ten(self):
        """Regression: sorting placements by *name* put par[10] before
        par[2], so any component with >= 10 tasks got its per-task
        resource list scrambled."""
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=12)
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = min_min(wf, matrix, nws)
        resources = schedule.component_resources("par")
        assert len(resources) == 12
        expected = [schedule.placements[f"par[{i}]"].resource
                    for i in range(12)]
        assert resources == expected

    def test_matches_single_task_component(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=3)
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = min_min(wf, matrix, nws)
        assert schedule.component_resources("entry") == \
            [schedule.placements["entry[0]"].resource]


class TestSchedulerCounters:
    def test_counters_accumulate_on_sim_stats(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=6)
        matrix = build_rank_matrix(wf, gis, nws)
        sim.stats.reset()
        min_min(wf, matrix, nws)
        snap = sim.stats.snapshot()
        # one round per committed task
        assert snap["sched_rounds"] == len(wf.tasks())
        assert snap["sched_evaluations"] > 0

    def test_memo_hits_on_shared_sources(self):
        """Two consumers pulling from the same producer location must
        hit the per-builder forecast memo, not re-query the NWS."""
        sim, grid, gis, nws = env()
        wf = Workflow("split")
        wf.add_component(comp("entry", mflop_total=100.0))
        wf.add_component(comp("left", mflop_total=2000.0, n_tasks=2,
                              in_bytes=4e6))
        wf.add_component(comp("right", mflop_total=2000.0, n_tasks=2,
                              in_bytes=4e6))
        wf.add_dependence("entry", "left")
        wf.add_dependence("entry", "right")
        matrix = build_rank_matrix(wf, gis, nws)
        sim.stats.reset()
        min_min(wf, matrix, nws)
        assert sim.stats.snapshot()["sched_memo_hits"] > 0

    def test_reference_engine_counts_more_evaluations(self):
        from repro.scheduler import reference_min_min
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=8)
        matrix = build_rank_matrix(wf, gis, nws)
        sim.stats.reset()
        min_min(wf, matrix, nws)
        fast_evals = sim.stats.snapshot()["sched_evaluations"]
        sim.stats.reset()
        reference_min_min(wf, matrix, nws)
        ref_evals = sim.stats.snapshot()["sched_evaluations"]
        assert 0 < fast_evals < ref_evals


class TestTieBreakDirection:
    """max-min and sufferage must break score ties toward the smallest
    task name, the same direction as min-min (regression: they used the
    largest, so schedules flipped under task renaming)."""

    @staticmethod
    def _tied_bag():
        wf = Workflow("bag")
        wf.add_component(comp("aaa", mflop_total=1000.0))
        wf.add_component(comp("zzz", mflop_total=1000.0))
        return wf

    def _first_committed(self, schedule):
        return min(schedule.placements.values(),
                   key=lambda p: (p.est_finish, p.task.name)).task.name

    def test_max_min_prefers_smallest_name_on_tie(self):
        sim, grid, gis, nws = env()
        wf = self._tied_bag()
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = max_min(wf, matrix, nws)
        # Identical tasks: the first commit (earliest finish on the best
        # resource) must be the lexicographically smallest name.
        assert self._first_committed(schedule) == "aaa[0]"

    def test_sufferage_prefers_smallest_name_on_tie(self):
        sim, grid, gis, nws = env()
        wf = self._tied_bag()
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = sufferage(wf, matrix, nws)
        assert self._first_committed(schedule) == "aaa[0]"

    def test_min_min_agrees_with_max_min_on_identical_tasks(self):
        sim, grid, gis, nws = env()
        wf = self._tied_bag()
        matrix = build_rank_matrix(wf, gis, nws)
        a = {k: v.resource for k, v in min_min(wf, matrix, nws)
             .placements.items()}
        b = {k: v.resource for k, v in max_min(wf, matrix, nws)
             .placements.items()}
        assert a == b


class TestGradsScheduler:
    def test_picks_min_makespan_of_three(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=8)
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        assert set(result.candidates) == {"min-min", "max-min", "sufferage"}
        assert result.best.makespan == min(result.makespans().values())

    def test_respects_resource_subset(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=4)
        subset = [r for r in gis.resources() if r.cluster == "uiuc"]
        result = GradsWorkflowScheduler(gis, nws).schedule(
            wf, resources=subset)
        used = {p.resource for p in result.best.placements.values()}
        assert all(name.startswith("uiuc.") for name in used)

    def test_heterogeneous_grid_schedules(self):
        sim, grid, gis, nws = env(grid_fn=heterogeneous_testbed)
        wf = fan_workflow(width=10)
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        used_isas = {gis.lookup(p.resource).isa
                     for p in result.best.placements.values()}
        # fast IA-64 nodes must attract work alongside IA-32
        assert "ia64" in used_isas


@settings(max_examples=15, deadline=None)
@given(width=st.integers(min_value=1, max_value=12),
       heuristic_name=st.sampled_from(["min-min", "max-min", "sufferage",
                                       "fifo", "heft"]))
def test_property_schedules_complete_and_dependence_safe(width, heuristic_name):
    sim, grid, gis, nws = env()
    wf = fan_workflow(width=width)
    matrix = build_rank_matrix(wf, gis, nws)
    schedule = HEURISTICS[heuristic_name](wf, matrix, nws)
    assert len(schedule.placements) == width + 2
    entry_finish = schedule.placements["entry[0]"].est_finish
    exit_start = schedule.placements["exit[0]"].est_start
    for i in range(width):
        p = schedule.placements[f"par[{i}]"]
        assert p.est_start >= entry_finish - 1e-9
        assert exit_start >= p.est_finish - 1e-9
