"""Tests for workflow execution on the live grid."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import (
    GradsWorkflowScheduler,
    Workflow,
    WorkflowComponent,
    WorkflowExecutor,
    build_rank_matrix,
    min_min,
)


def env():
    sim = Simulator()
    grid = fig3_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, gis, nws


def comp(name, mflop_total=373.2, n_tasks=1, in_bytes=0.0):
    return WorkflowComponent(
        name=name,
        model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop_total: m),
        problem_size=1.0,
        n_tasks=n_tasks,
        input_bytes_per_task=in_bytes,
    )


def pipeline():
    wf = Workflow("pipe")
    wf.add_component(comp("a"))
    wf.add_component(comp("b", n_tasks=4, mflop_total=4 * 373.2))
    wf.add_component(comp("c"))
    wf.add_dependence("a", "b")
    wf.add_dependence("b", "c")
    return wf


class TestExecutor:
    def test_execution_completes_with_trace(self):
        sim, grid, gis, nws = env()
        wf = pipeline()
        schedule = GradsWorkflowScheduler(gis, nws).schedule(wf).best
        executor = WorkflowExecutor(sim, grid.topology, gis)
        ev = executor.execute(wf, schedule)
        sim.run(stop_event=ev)
        trace = ev.value
        assert len(trace.tasks) == 6
        assert trace.makespan > 0

    def test_execution_respects_dependences(self):
        sim, grid, gis, nws = env()
        wf = pipeline()
        schedule = GradsWorkflowScheduler(gis, nws).schedule(wf).best
        executor = WorkflowExecutor(sim, grid.topology, gis)
        ev = executor.execute(wf, schedule)
        sim.run(stop_event=ev)
        trace = ev.value
        a_done = trace.tasks["a[0]"].finished_at
        c_start = trace.tasks["c[0]"].started_at
        for i in range(4):
            b = trace.tasks[f"b[{i}]"]
            assert b.started_at >= a_done - 1e-9
            assert c_start >= b.finished_at - 1e-9

    def test_measured_close_to_estimated_on_idle_grid(self):
        """On an unloaded grid, achieved makespan tracks the estimate
        (within transfer modelling slop)."""
        sim, grid, gis, nws = env()
        wf = pipeline()
        schedule = GradsWorkflowScheduler(gis, nws).schedule(wf).best
        executor = WorkflowExecutor(sim, grid.topology, gis)
        ev = executor.execute(wf, schedule)
        sim.run(stop_event=ev)
        assert ev.value.makespan == pytest.approx(schedule.makespan, rel=0.25)

    def test_data_transfers_charged(self):
        sim, grid, gis, nws = env()
        wf = Workflow("data")
        wf.add_component(comp("src"))
        wf.add_component(comp("dst", in_bytes=50e6))
        wf.add_dependence("src", "dst")
        matrix = build_rank_matrix(wf, gis, nws)
        schedule = min_min(wf, matrix, nws)
        # Force the two tasks onto different clusters to exercise the WAN.
        from repro.scheduler import Placement, Task
        src_task = wf.tasks()[0]
        dst_task = wf.tasks()[1]
        schedule.placements["src[0]"] = Placement(
            task=src_task, resource="utk.n0", est_start=0, est_finish=1)
        schedule.placements["dst[0]"] = Placement(
            task=dst_task, resource="uiuc.n0", est_start=1, est_finish=2)
        executor = WorkflowExecutor(sim, grid.topology, gis)
        ev = executor.execute(wf, schedule)
        sim.run(stop_event=ev)
        trace = ev.value
        # 50 MB over the 5 MB/s WAN: at least 10 s of data wait
        assert trace.tasks["dst[0]"].data_wait_seconds >= 10.0

    def test_incomplete_schedule_rejected(self):
        sim, grid, gis, nws = env()
        wf = pipeline()
        from repro.scheduler import Schedule
        empty = Schedule(heuristic="none")
        executor = WorkflowExecutor(sim, grid.topology, gis)
        with pytest.raises(ValueError):
            executor.execute(wf, empty)
