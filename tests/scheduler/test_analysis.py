"""Tests for schedule analysis utilities."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import (
    GradsWorkflowScheduler,
    Schedule,
    Workflow,
    WorkflowComponent,
    analyze,
    gantt,
    load_balance,
    makespan_lower_bound,
    utilization,
)


def env():
    sim = Simulator()
    grid = fig3_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, gis, nws


def fan_workflow(width=8, mflop=1000.0):
    wf = Workflow("fan")
    wf.add_component(WorkflowComponent(
        name="par", problem_size=1.0, n_tasks=width,
        model=AnalyticComponentModel(mflop_fn=lambda n: mflop * width)))
    return wf


class TestLowerBound:
    def test_aggregate_bound_binds_wide_workflows(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=100, mflop=1000.0)
        resources = gis.resources()
        bound = makespan_lower_bound(wf, resources)
        aggregate = sum(r.mflops for r in resources)
        assert bound == pytest.approx(100 * 1000.0 / aggregate)

    def test_critical_path_bound_binds_chains(self):
        sim, grid, gis, nws = env()
        wf = Workflow("chain")
        prev = None
        for i in range(5):
            wf.add_component(WorkflowComponent(
                name=f"s{i}", problem_size=1.0,
                model=AnalyticComponentModel(mflop_fn=lambda n: 1000.0)))
            if prev:
                wf.add_dependence(prev, f"s{i}")
            prev = f"s{i}"
        bound = makespan_lower_bound(wf, gis.resources())
        fastest = max(r.mflops for r in gis.resources())
        assert bound == pytest.approx(5 * 1000.0 / fastest)

    def test_empty_resources_rejected(self):
        wf = fan_workflow()
        with pytest.raises(ValueError):
            makespan_lower_bound(wf, [])

    def test_every_heuristic_respects_bound(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=12, mflop=2000.0)
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        bound = makespan_lower_bound(wf, gis.resources())
        for schedule in result.candidates.values():
            assert schedule.makespan >= bound - 1e-9


class TestStats:
    def test_analyze_reports_gap_and_utilization(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=12, mflop=2000.0)
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        stats = analyze(wf, result.best, gis.resources())
        assert stats.optimality_gap >= 1.0
        assert 0.0 < stats.mean_utilization <= 1.0
        assert stats.max_utilization <= 1.0 + 1e-9
        assert stats.n_resources_used >= 6
        assert stats.imbalance >= 1.0

    def test_empty_schedule_degenerate(self):
        empty = Schedule(heuristic="none")
        assert utilization(empty) == {}
        assert load_balance(empty) == 1.0

    def test_single_resource_perfect_balance(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=1)
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        assert load_balance(result.best) == pytest.approx(1.0)


class TestGantt:
    def test_renders_rows_per_resource(self):
        sim, grid, gis, nws = env()
        wf = fan_workflow(width=6, mflop=2000.0)
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        chart = gantt(result.best, width=40)
        used = {p.resource for p in result.best.placements.values()}
        lines = chart.splitlines()
        assert len(lines) == 1 + len(used)
        for line in lines[1:]:
            assert line.endswith("|")
            bar = line.split("|")[1]
            assert len(bar) == 40
            assert "p" in bar  # component glyph

    def test_empty_schedule_placeholder(self):
        assert "empty" in gantt(Schedule(heuristic="x"))
