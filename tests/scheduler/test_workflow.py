"""Tests for the workflow DAG model."""

import pytest

from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import Task, Workflow, WorkflowComponent, WorkflowError


def comp(name, mflop=100.0, n_tasks=1, size=1.0, in_bytes=0.0, out_bytes=0.0):
    return WorkflowComponent(
        name=name,
        model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m * n),
        problem_size=size,
        n_tasks=n_tasks,
        input_bytes_per_task=in_bytes,
        output_bytes_per_task=out_bytes,
    )


def linear_workflow(names=("a", "b", "c")):
    wf = Workflow("linear")
    for name in names:
        wf.add_component(comp(name))
    for prev, nxt in zip(names, names[1:]):
        wf.add_dependence(prev, nxt)
    return wf


class TestWorkflow:
    def test_components_topological_order(self):
        wf = linear_workflow()
        assert [c.name for c in wf.components()] == ["a", "b", "c"]

    def test_duplicate_component_rejected(self):
        wf = Workflow()
        wf.add_component(comp("a"))
        with pytest.raises(WorkflowError):
            wf.add_component(comp("a"))

    def test_dependence_unknown_component_rejected(self):
        wf = Workflow()
        wf.add_component(comp("a"))
        with pytest.raises(WorkflowError):
            wf.add_dependence("a", "ghost")

    def test_cycle_rejected_and_rolled_back(self):
        wf = linear_workflow()
        with pytest.raises(WorkflowError, match="cycle"):
            wf.add_dependence("c", "a")
        # the offending edge must not remain
        assert [c.name for c in wf.components()] == ["a", "b", "c"]

    def test_predecessors_successors(self):
        wf = linear_workflow()
        assert [c.name for c in wf.predecessors("b")] == ["a"]
        assert [c.name for c in wf.successors("b")] == ["c"]
        assert wf.predecessors("a") == []
        assert wf.successors("c") == []

    def test_parallel_component_expands_to_tasks(self):
        wf = Workflow()
        wf.add_component(comp("par", n_tasks=4))
        tasks = wf.tasks()
        assert [t.name for t in tasks] == [
            "par[0]", "par[1]", "par[2]", "par[3]"]

    def test_task_mflop_divides_component_work(self):
        c = comp("par", mflop=100.0, n_tasks=4, size=2.0)
        assert Task(c, 0).mflop() == pytest.approx(50.0)

    def test_levels_group_independent_components(self):
        wf = Workflow()
        for name in ("a", "b1", "b2", "c"):
            wf.add_component(comp(name))
        wf.add_dependence("a", "b1")
        wf.add_dependence("a", "b2")
        wf.add_dependence("b1", "c")
        wf.add_dependence("b2", "c")
        levels = [[c.name for c in lvl] for lvl in wf.levels()]
        assert levels == [["a"], ["b1", "b2"], ["c"]]

    def test_total_and_critical_path_mflop(self):
        wf = Workflow()
        wf.add_component(comp("a", mflop=100.0))
        wf.add_component(comp("b", mflop=300.0, n_tasks=3))
        wf.add_dependence("a", "b")
        assert wf.total_mflop() == pytest.approx(400.0)
        # critical path: a (100) + one b task (100)
        assert wf.critical_path_mflop() == pytest.approx(200.0)

    def test_component_validation(self):
        with pytest.raises(WorkflowError):
            comp("bad", n_tasks=0)
        with pytest.raises(WorkflowError):
            comp("bad", size=-1.0)

    def test_contains_and_len(self):
        wf = linear_workflow()
        assert "a" in wf and "ghost" not in wf
        assert len(wf) == 3

    def test_unknown_component_lookup(self):
        wf = linear_workflow()
        with pytest.raises(WorkflowError):
            wf.component("ghost")
