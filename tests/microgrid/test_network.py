"""Tests for the routed topology and max-min fair flow model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.microgrid import (
    Architecture,
    Host,
    NetworkError,
    Topology,
    reference_max_min,
)


def two_hosts(sim, bw=1e6, lat=0.01):
    """a -- switch -- b with identical access links."""
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=100.0)
    a = Host(sim, "a", arch)
    b = Host(sim, "b", arch)
    topo.attach_host(a)
    topo.attach_host(b)
    topo.add_node("sw")
    topo.add_link("a", "sw", bandwidth=bw, latency=lat / 2)
    topo.add_link("b", "sw", bandwidth=bw, latency=lat / 2)
    return topo, a, b


def test_single_transfer_time():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.01)
    ev = topo.transfer("a", "b", 1e6)
    sim.run()
    # latency + bytes/bw = 0.01 + 1.0
    assert ev.value == pytest.approx(1.01, rel=1e-6)


def test_zero_byte_transfer_takes_latency_only():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.02)
    ev = topo.transfer("a", "b", 0)
    sim.run()
    assert ev.value == pytest.approx(0.02)


def test_local_transfer_uses_memcpy_bandwidth():
    sim = Simulator()
    topo, a, b = two_hosts(sim)
    topo.local_copy_bw = 1e9
    ev = topo.transfer("a", "a", 1e9)
    sim.run()
    assert ev.value == pytest.approx(1.0)


def test_negative_transfer_rejected():
    sim = Simulator()
    topo, a, b = two_hosts(sim)
    with pytest.raises(ValueError):
        topo.transfer("a", "b", -5)


def test_unroutable_transfer_raises():
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    topo.attach_host(Host(sim, "x", arch))
    topo.attach_host(Host(sim, "y", arch))
    with pytest.raises(NetworkError):
        topo.transfer("x", "y", 100)


def test_unknown_host_lookup():
    sim = Simulator()
    topo = Topology(sim)
    with pytest.raises(NetworkError):
        topo.host("ghost")


def test_duplicate_host_rejected():
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    topo.attach_host(Host(sim, "x", arch))
    with pytest.raises(NetworkError):
        topo.attach_host(Host(sim, "x", arch))


def test_two_flows_share_bottleneck():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    e1 = topo.transfer("a", "b", 1e6)
    e2 = topo.transfer("a", "b", 1e6)
    sim.run()
    # Both flows share the 1 MB/s path: each runs at 0.5 MB/s.
    assert e1.value == pytest.approx(2.0, rel=1e-6)
    assert e2.value == pytest.approx(2.0, rel=1e-6)


def test_flow_speeds_up_when_other_finishes():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    small = topo.transfer("a", "b", 0.5e6)
    large = topo.transfer("a", "b", 1.5e6)
    sim.run()
    # Shared until small drains at t=1.0 (0.5 MB at 0.5 MB/s); large then
    # has 1.0 MB left at full rate -> finishes at t=2.0.
    assert small.value == pytest.approx(1.0, rel=1e-6)
    assert large.value == pytest.approx(2.0, rel=1e-6)


def test_opposite_directions_full_duplex():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    e1 = topo.transfer("a", "b", 1e6)
    e2 = topo.transfer("b", "a", 1e6)
    sim.run()
    # Full-duplex links: no interference between directions.
    assert e1.value == pytest.approx(1.0, rel=1e-6)
    assert e2.value == pytest.approx(1.0, rel=1e-6)


def test_disjoint_paths_dont_interfere():
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    for name in ("a", "b", "c", "d"):
        topo.attach_host(Host(sim, name, arch))
    topo.add_link("a", "b", bandwidth=1e6, latency=0.0)
    topo.add_link("c", "d", bandwidth=2e6, latency=0.0)
    e1 = topo.transfer("a", "b", 1e6)
    e2 = topo.transfer("c", "d", 1e6)
    sim.run()
    assert e1.value == pytest.approx(1.0, rel=1e-6)
    assert e2.value == pytest.approx(0.5, rel=1e-6)


def test_max_min_fairness_unequal_bottlenecks():
    """A flow constrained elsewhere releases bandwidth to its sharers.

    Topology: a--r (10 MB/s), b--r (1 MB/s), r--c (10 MB/s).
    Flow 1: a->c, flow 2: b->c.  Flow 2 is capped at 1 MB/s by its access
    link, so max-min gives flow 1 the remaining 9 MB/s on r--c.
    """
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    for name in ("a", "b", "c"):
        topo.attach_host(Host(sim, name, arch))
    topo.add_node("r")
    topo.add_link("a", "r", bandwidth=10e6, latency=0.0)
    topo.add_link("b", "r", bandwidth=1e6, latency=0.0)
    topo.add_link("r", "c", bandwidth=10e6, latency=0.0)
    e1 = topo.transfer("a", "c", 9e6)
    e2 = topo.transfer("b", "c", 1e6)
    sim.run()
    assert e2.value == pytest.approx(1.0, rel=1e-6)  # 1 MB at 1 MB/s
    assert e1.value == pytest.approx(1.0, rel=1e-6)  # 9 MB at 9 MB/s


def test_latency_sums_along_path():
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    topo.attach_host(Host(sim, "a", arch))
    topo.attach_host(Host(sim, "b", arch))
    topo.add_node("r1")
    topo.add_node("r2")
    topo.add_link("a", "r1", bandwidth=1e6, latency=0.001)
    topo.add_link("r1", "r2", bandwidth=1e6, latency=0.010)
    topo.add_link("r2", "b", bandwidth=1e6, latency=0.002)
    assert topo.path_latency("a", "b") == pytest.approx(0.013)
    assert topo.path_bottleneck_bw("a", "b") == pytest.approx(1e6)


def test_estimate_matches_uncontended_actual():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=2e6, lat=0.05)
    est = topo.estimate_transfer_seconds("a", "b", 4e6)
    ev = topo.transfer("a", "b", 4e6)
    sim.run()
    assert ev.value == pytest.approx(est, rel=1e-6)


def test_bytes_delivered_accounting():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    topo.transfer("a", "b", 3e6)
    topo.transfer("b", "a", 2e6)
    sim.run()
    assert topo.bytes_delivered == pytest.approx(5e6, rel=1e-6)


def test_routing_cache_invalidated_by_new_link():
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    topo.attach_host(Host(sim, "a", arch))
    topo.attach_host(Host(sim, "b", arch))
    topo.add_node("slow")
    topo.add_link("a", "slow", bandwidth=1e6, latency=0.5)
    topo.add_link("slow", "b", bandwidth=1e6, latency=0.5)
    assert topo.path_latency("a", "b") == pytest.approx(1.0)
    topo.add_link("a", "b", bandwidth=1e6, latency=0.001)
    assert topo.path_latency("a", "b") == pytest.approx(0.001)


def test_link_validation():
    sim = Simulator()
    topo = Topology(sim)
    with pytest.raises(ValueError):
        topo.add_link("a", "b", bandwidth=0.0, latency=0.0)
    with pytest.raises(ValueError):
        topo.add_link("a", "b", bandwidth=1.0, latency=-0.1)


def test_add_link_mid_run_reallocates_existing_flows():
    """Regression: upgrading a link's bandwidth while a flow is in
    flight must take effect immediately, not at the next flow event."""
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    topo.attach_host(Host(sim, "a", arch))
    topo.attach_host(Host(sim, "b", arch))
    topo.add_link("a", "b", bandwidth=1e6, latency=0.0)
    ev = topo.transfer("a", "b", 4e6)
    # At t=1: 1 MB moved; quadruple the capacity -> 3 MB left at 4 MB/s.
    sim.call_at(1.0, lambda: topo.add_link("a", "b", bandwidth=4e6,
                                           latency=0.0))
    sim.run()
    assert ev.value == pytest.approx(1.75, rel=1e-6)


def test_add_link_mid_run_downgrade_slows_existing_flows():
    sim = Simulator()
    topo = Topology(sim)
    arch = Architecture(name="t", mflops=1.0)
    topo.attach_host(Host(sim, "a", arch))
    topo.attach_host(Host(sim, "b", arch))
    topo.add_link("a", "b", bandwidth=2e6, latency=0.0)
    ev = topo.transfer("a", "b", 4e6)
    # At t=1: 2 MB moved; halve the capacity -> 2 MB left at 1 MB/s.
    sim.call_at(1.0, lambda: topo.add_link("a", "b", bandwidth=1e6,
                                           latency=0.0))
    sim.run()
    assert ev.value == pytest.approx(3.0, rel=1e-6)


def test_add_node_mid_run_keeps_flows_consistent():
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    ev = topo.transfer("a", "b", 2e6)
    sim.call_at(1.0, lambda: topo.add_node("router99"))
    sim.run()
    assert ev.value == pytest.approx(2.0, rel=1e-6)
    assert topo.bytes_delivered == pytest.approx(2e6, rel=1e-6)


def test_route_cache_counters():
    sim = Simulator()
    topo, a, b = two_hosts(sim)
    assert sim.stats.route_cache_misses == 0
    topo.path_latency("a", "b")
    assert sim.stats.route_cache_misses == 1
    hits_before = sim.stats.route_cache_hits
    topo.path_latency("a", "b")
    topo.estimate_transfer_seconds("a", "b", 1e6)
    assert sim.stats.route_cache_misses == 1  # served from cache
    assert sim.stats.route_cache_hits > hits_before


def test_route_cache_invalidated_by_topology_change_counters():
    sim = Simulator()
    topo, a, b = two_hosts(sim)
    topo.path_latency("a", "b")
    topo.add_link("a", "b", bandwidth=5e6, latency=0.001)
    topo.path_latency("a", "b")
    assert sim.stats.route_cache_misses == 2


def test_reallocation_counter_increments_per_flow_event():
    sim = Simulator()
    topo, a, b = two_hosts(sim, lat=0.0)
    topo.transfer("a", "b", 1e6)
    topo.transfer("a", "b", 1e6)
    sim.run()
    # two arrivals + one departure wake (both finish together)
    assert sim.stats.reallocations == 3


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1e3, max_value=1e7),
                      min_size=1, max_size=6))
def test_property_shared_link_conserves_bytes(sizes):
    """All bytes submitted over a shared link are eventually delivered,
    and the makespan is at least total/capacity (link is never
    over-driven) and at most what strict serialization would take."""
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    events = [topo.transfer("a", "b", s) for s in sizes]
    sim.run()
    assert all(ev.triggered for ev in events)
    assert topo.bytes_delivered == pytest.approx(sum(sizes), rel=1e-6)
    assert sim.now >= sum(sizes) / 1e6 - 1e-6
    assert sim.now <= sum(sizes) / 1e6 + 1e-6  # PS keeps the link saturated


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=8))
def test_property_equal_flows_finish_together(n):
    sim = Simulator()
    topo, a, b = two_hosts(sim, bw=1e6, lat=0.0)
    events = [topo.transfer("a", "b", 1e6) for _ in range(n)]
    sim.run()
    finish = {round(ev.value, 6) for ev in events}
    assert len(finish) == 1
    assert events[0].value == pytest.approx(n * 1.0, rel=1e-6)


# -- incremental vs reference allocator equivalence --------------------------

_random_scenarios = st.fixed_dictionaries({
    "n_nodes": st.integers(min_value=3, max_value=7),
    "parents": st.lists(st.integers(min_value=0, max_value=5),
                        min_size=6, max_size=6),
    "extra_edges": st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=0, max_size=4),
    "bandwidths": st.lists(
        st.sampled_from([1e5, 5e5, 1e6, 2e6, 1e7]),
        min_size=10, max_size=10),
    "latencies": st.lists(st.sampled_from([0.0, 0.001, 0.01]),
                          min_size=10, max_size=10),
    "flows": st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6),
                  st.floats(min_value=1e3, max_value=5e6),
                  st.sampled_from([0.0, 0.1, 0.5, 1.0, 2.0])),
        min_size=1, max_size=10),
})


def _build_scenario(sim, scenario, allocator):
    """One random connected topology + timed flow set, per allocator."""
    n = scenario["n_nodes"]
    topo = Topology(sim, allocator=allocator)
    arch = Architecture(name="t", mflops=1.0)
    for i in range(n):
        topo.attach_host(Host(sim, f"n{i}", arch))
    edges = []
    # Spanning tree first (node i hangs off an earlier node), so every
    # flow is routable; extra edges then add shortcuts/parallel paths.
    for i in range(1, n):
        edges.append((i, scenario["parents"][i - 1] % i))
    for a, b in scenario["extra_edges"]:
        a, b = a % n, b % n
        if a != b:
            edges.append((a, b))
    for k, (a, b) in enumerate(edges):
        topo.add_link(f"n{a}", f"n{b}",
                      bandwidth=scenario["bandwidths"][k % 10],
                      latency=scenario["latencies"][k % 10])
    events = []
    for src, dst, nbytes, start in scenario["flows"]:
        src, dst = src % n, dst % n
        if src == dst:
            dst = (dst + 1) % n
        sim.call_at(start, lambda s=src, d=dst, b=nbytes:
                    events.append(topo.transfer(f"n{s}", f"n{d}", b)))
    return topo, events


@settings(max_examples=40, deadline=None)
@given(scenario=_random_scenarios)
def test_property_incremental_allocator_matches_reference(scenario):
    """The component-scoped incremental allocator and the from-scratch
    reference progressive-filling allocator drive identical simulations:
    same in-flight rates at probe times, same completion times, same
    bytes delivered."""
    runs = {}
    for allocator in ("incremental", "reference"):
        sim = Simulator()
        topo, events = _build_scenario(sim, scenario, allocator)
        probes = []
        for t in (0.25, 0.75, 1.5, 3.0):
            sim.call_at(t, lambda topo=topo, probes=probes:
                        probes.append(sorted(f.allocation
                                             for f in topo._flows)))
        sim.run()
        assert all(ev.triggered for ev in events)
        runs[allocator] = {
            "values": [ev.value for ev in events],
            "probes": probes,
            "bytes": topo.bytes_delivered,
            "finished": sim.now,
        }
    incr, ref = runs["incremental"], runs["reference"]
    assert incr["values"] == pytest.approx(ref["values"], rel=1e-9)
    assert incr["bytes"] == pytest.approx(ref["bytes"], rel=1e-9)
    assert incr["finished"] == pytest.approx(ref["finished"], rel=1e-9)
    for pi, pr in zip(incr["probes"], ref["probes"]):
        assert pi == pytest.approx(pr, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(scenario=_random_scenarios)
def test_property_live_allocations_match_pure_reference(scenario):
    """Mid-run, the incremental topology's rates equal what the pure
    reference allocator computes for the same flow set and capacities —
    the direct oracle check for the interned-edge bookkeeping."""
    sim = Simulator()
    topo, _events = _build_scenario(sim, scenario, "incremental")

    def check():
        if not topo._flows:
            return
        expected = reference_max_min(
            [f.edge_ids for f in topo._flows],
            dict(enumerate(topo._edge_cap)))
        actual = [f.allocation for f in topo._flows]
        assert actual == pytest.approx(expected, rel=1e-9)

    for t in (0.05, 0.3, 0.8, 1.2, 2.5):
        sim.call_at(t, check)
    sim.run()
