"""Tests for host failure injection."""

import pytest

from repro.sim import RngRegistry, Simulator
from repro.microgrid import (
    Architecture,
    Host,
    HostFailure,
    RandomFailureInjector,
    ScheduledFailure,
    fig3_testbed,
)


def make_host(sim, mflops=100.0):
    return Host(sim, "h0", Architecture(name="t", mflops=mflops))


class TestHostFailure:
    def test_fail_kills_running_tasks(self):
        sim = Simulator()
        host = make_host(sim)
        ev = host.compute(1000.0)
        caught = []

        def proc():
            try:
                yield ev
            except HostFailure as exc:
                caught.append((sim.now, exc.host_name))

        sim.process(proc())
        sim.call_after(2.0, host.fail)
        sim.run()
        assert caught == [(2.0, "h0")]
        assert not host.alive
        assert host.failures == 1

    def test_dead_host_rejects_new_work(self):
        sim = Simulator()
        host = make_host(sim)
        host.fail()
        caught = []

        def proc():
            try:
                yield host.compute(10.0)
            except HostFailure:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]

    def test_availability_zero_when_dead(self):
        sim = Simulator()
        host = make_host(sim)
        host.fail()
        assert host.availability() == 0.0

    def test_recover_restores_service(self):
        sim = Simulator()
        host = make_host(sim)
        host.fail()
        host.recover()
        assert host.alive
        ev = host.compute(100.0)
        sim.run()
        assert ev.value == pytest.approx(1.0)

    def test_double_fail_and_bad_recover_rejected(self):
        sim = Simulator()
        host = make_host(sim)
        host.fail()
        with pytest.raises(ValueError):
            host.fail()
        host.recover()
        with pytest.raises(ValueError):
            host.recover()

    def test_work_done_before_failure_is_accounted(self):
        sim = Simulator()
        host = make_host(sim, mflops=100.0)
        ev = host.compute(1000.0)
        ev.defused = True  # nothing will consume the failure
        sim.call_after(3.0, host.fail)
        sim.run()
        assert host.mflop_done == pytest.approx(300.0)

    def test_failure_does_not_break_surviving_tasks_elsewhere(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        victim = grid.clusters["utk"][0]
        survivor = grid.clusters["utk"][1]
        doomed = victim.compute(1e6)
        doomed.defused = True
        ok = survivor.compute(373.2)
        sim.call_after(0.5, victim.fail)
        sim.run(until=10.0)
        assert ok.triggered and ok.ok
        assert doomed.triggered and not doomed.ok


class TestScheduledFailure:
    def test_fails_and_recovers_on_schedule(self):
        sim = Simulator()
        host = make_host(sim)
        ScheduledFailure(host=host, at=5.0, recover_at=15.0).install(sim)
        sim.run(until=10.0)
        assert not host.alive
        sim.run(until=20.0)
        assert host.alive

    def test_bad_window_rejected(self):
        sim = Simulator()
        host = make_host(sim)
        with pytest.raises(ValueError):
            ScheduledFailure(host=host, at=5.0, recover_at=3.0).install(sim)


class TestRandomFailureInjector:
    def test_failures_occur_and_recover(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        rng = RngRegistry(seed=5).stream("failures")
        injector = RandomFailureInjector(grid.clusters["uiuc"].hosts, rng,
                                         mtbf=50.0, mttr=10.0)
        injector.install(sim)
        sim.run(until=500.0)
        assert injector.failures  # with mtbf=50 over 500 s, certain
        # availability bookkeeping is consistent
        for host in grid.clusters["uiuc"]:
            assert host.failures >= 0

    def test_parameter_validation(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        rng = RngRegistry(seed=5).stream("x")
        with pytest.raises(ValueError):
            RandomFailureInjector(grid.clusters["utk"].hosts, rng,
                                  mtbf=0.0, mttr=1.0)

    def _schedule(self, rng=None, seed=None):
        sim = Simulator()
        grid = fig3_testbed(sim)
        injector = RandomFailureInjector(grid.clusters["uiuc"].hosts,
                                         rng=rng, seed=seed,
                                         mtbf=50.0, mttr=10.0)
        injector.install(sim)
        sim.run(until=500.0)
        return injector.failures

    def test_equal_seeds_give_identical_schedules(self):
        assert self._schedule(seed=11) == self._schedule(seed=11)
        assert self._schedule(seed=11) != self._schedule(seed=12)

    def test_int_rng_is_treated_as_seed(self):
        assert self._schedule(rng=11) == self._schedule(seed=11)

    def test_default_seed_is_deterministic(self):
        assert self._schedule() == self._schedule(seed=0)

    def test_rng_and_seed_together_rejected(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        rng = RngRegistry(seed=5).stream("x")
        with pytest.raises(ValueError, match="not both"):
            RandomFailureInjector(grid.clusters["utk"].hosts, rng, seed=3,
                                  mtbf=1.0, mttr=1.0)

    def test_bad_rng_type_rejected(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        with pytest.raises(TypeError):
            RandomFailureInjector(grid.clusters["utk"].hosts, "rng",
                                  mtbf=1.0, mttr=1.0)


class TestFailureSourceInterleaving:
    def test_injector_leaves_deliberately_downed_host_down(self):
        """The injector only repairs failures it caused itself: a host a
        ScheduledFailure left down for good must stay down."""
        sim = Simulator()
        host = make_host(sim)
        ScheduledFailure(host=host, at=0.0).install(sim)
        injector = RandomFailureInjector([host], seed=0, mtbf=5.0, mttr=2.0)
        injector.install(sim)
        sim.run(until=200.0)
        assert not host.alive
        assert injector.failures == []

    def test_overlapping_scheduled_failures_tolerated(self):
        sim = Simulator()
        host = make_host(sim)
        ScheduledFailure(host=host, at=1.0, recover_at=10.0).install(sim)
        ScheduledFailure(host=host, at=2.0, recover_at=5.0).install(sim)
        sim.run(until=20.0)
        assert host.alive
        assert host.failures == 1

    def test_injector_and_scheduled_failures_coexist(self):
        """Both sources drive the same hosts for a long stretch without
        any double-fail/double-recover ValueError escaping."""
        sim = Simulator()
        grid = fig3_testbed(sim)
        hosts = grid.clusters["uiuc"].hosts
        for host in hosts:
            ScheduledFailure(host=host, at=25.0, recover_at=40.0).install(sim)
        injector = RandomFailureInjector(hosts, seed=7, mtbf=30.0, mttr=10.0)
        injector.install(sim)
        sim.run(until=500.0)
        assert all(host.failures >= 1 for host in hosts)
