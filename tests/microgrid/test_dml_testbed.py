"""Tests for the DML parser, testbed builders and load generators."""

import pytest

from repro.sim import RngRegistry, Simulator
from repro.microgrid import (
    DMLError,
    RandomLoadGenerator,
    ScheduledLoad,
    TraceLoad,
    fig3_testbed,
    fig4_testbed,
    grads_macrogrid,
    heterogeneous_testbed,
    parse_grid,
    parse_quantity,
)


DML = """
# the fig3-style testbed, written in DML
arch pIII-933 mflops=373 isa=ia32 cache=256KB
arch pII-450  mflops=180 isa=ia32 cache=512KB
cluster utk  arch=pIII-933 hosts=4 cores=2 nic=100Mb  lat=0.1ms
cluster uiuc arch=pII-450  hosts=8 cores=1 nic=1.28Gb lat=0.05ms
host ucsd.n0 arch=pIII-933 nic=100Mb lat=0.1ms
link utk uiuc bw=40Mb lat=11ms
link ucsd.n0 utk bw=40Mb lat=30ms
"""


class TestParseQuantity:
    def test_bit_bandwidths(self):
        assert parse_quantity("100Mb", "bandwidth") == pytest.approx(12.5e6)
        assert parse_quantity("1.28Gb", "bandwidth") == pytest.approx(160e6)

    def test_byte_bandwidths(self):
        assert parse_quantity("5MB", "bandwidth") == pytest.approx(5e6)

    def test_times(self):
        assert parse_quantity("11ms", "time") == pytest.approx(0.011)
        assert parse_quantity("30us", "time") == pytest.approx(30e-6)
        assert parse_quantity("2s", "time") == pytest.approx(2.0)

    def test_sizes(self):
        assert parse_quantity("512KB", "size") == 512 * 1024
        assert parse_quantity("1GB", "size") == 1024 ** 3

    def test_bare_number_passes_through(self):
        assert parse_quantity("123.5", "time") == pytest.approx(123.5)

    def test_bad_unit_rejected(self):
        with pytest.raises(DMLError):
            parse_quantity("10parsecs", "time")

    def test_bad_number_rejected(self):
        with pytest.raises(DMLError):
            parse_quantity("fast", "bandwidth")


class TestParseGrid:
    def test_full_grid_builds(self):
        sim = Simulator()
        grid = parse_grid(DML, sim)
        assert set(grid.clusters) == {"utk", "uiuc"}
        assert len(grid.clusters["utk"]) == 4
        assert grid.clusters["utk"][0].cores == 2
        assert len(grid.clusters["uiuc"]) == 8
        assert "ucsd.n0" in grid.standalone_hosts
        assert len(grid.all_hosts()) == 13

    def test_cross_cluster_route_exists(self):
        sim = Simulator()
        grid = parse_grid(DML, sim)
        lat = grid.topology.path_latency("utk.n0", "uiuc.n3")
        assert lat == pytest.approx(0.011 + 0.0001 + 0.00005)

    def test_transfer_over_parsed_grid(self):
        sim = Simulator()
        grid = parse_grid(DML, sim)
        ev = grid.topology.transfer("utk.n0", "uiuc.n0", 5e6)
        sim.run()
        # bottleneck is the 40 Mb (5 MB/s) WAN link
        assert ev.value == pytest.approx(1.0 + 0.01115, rel=1e-3)

    def test_unknown_arch_rejected(self):
        sim = Simulator()
        with pytest.raises(DMLError, match="unknown arch"):
            parse_grid("cluster c arch=ghost hosts=2", sim)

    def test_unknown_directive_rejected(self):
        sim = Simulator()
        with pytest.raises(DMLError, match="line 1"):
            parse_grid("frobnicate x y", sim)

    def test_link_to_unknown_endpoint_rejected(self):
        sim = Simulator()
        with pytest.raises(DMLError, match="endpoint"):
            parse_grid("arch a mflops=1\ncluster c arch=a hosts=1\n"
                       "link c ghost bw=1Mb lat=1ms", sim)

    def test_missing_required_key_rejected(self):
        sim = Simulator()
        with pytest.raises(DMLError):
            parse_grid("arch a mflops=1\ncluster c arch=a", sim)

    def test_comments_and_blanks_ignored(self):
        sim = Simulator()
        grid = parse_grid("\n# nothing here\n   \n", sim)
        assert grid.all_hosts() == []


class TestTestbeds:
    def test_fig3_testbed_shape(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        assert len(grid.clusters["utk"]) == 4
        assert len(grid.clusters["uiuc"]) == 8
        # UTK nodes are dual-processor PIIIs; UIUC single PIIs.
        assert grid.clusters["utk"][0].cores == 2
        assert grid.clusters["uiuc"][0].cores == 1
        # UTK is the faster cluster per node.
        assert grid.clusters["utk"].arch.mflops > grid.clusters["uiuc"].arch.mflops

    def test_fig3_internet_is_bottleneck(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        bw = grid.topology.path_bottleneck_bw("utk.n0", "uiuc.n0")
        assert bw < 12.5e6  # slower than the 100Mb LAN

    def test_fig4_testbed_shape(self):
        sim = Simulator()
        grid = fig4_testbed(sim)
        assert len(grid.clusters["utk"]) == 3
        assert len(grid.clusters["uiuc"]) == 3
        assert "ucsd.n0" in grid.standalone_hosts
        # 30 ms UCSD latency, 11 ms UTK<->UIUC (plus tiny LAN hops).
        assert grid.topology.path_latency("ucsd.n0", "utk.n0") == pytest.approx(
            0.030, abs=0.001)
        assert grid.topology.path_latency("utk.n0", "uiuc.n0") == pytest.approx(
            0.011, abs=0.001)

    def test_macrogrid_scale(self):
        sim = Simulator()
        grid = grads_macrogrid(sim)
        assert len(grid.all_hosts()) == 10 + 12 + 12 + 12 + 12 + 24
        # every pair of sites is routable
        lat = grid.topology.path_latency("ucsd.n0", "uh.n0")
        assert lat > 0

    def test_heterogeneous_testbed_mixes_isas(self):
        sim = Simulator()
        grid = heterogeneous_testbed(sim)
        isas = {c.arch.isa for c in grid.clusters.values()}
        assert isas == {"ia32", "ia64"}


class TestLoadGenerators:
    def test_scheduled_load_injects_at_time(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        host = grid.clusters["utk"][0]
        ScheduledLoad(host=host, at=10.0, nprocs=2).install(sim)
        assert host.background_load() == 0
        sim.run(until=11.0)
        assert host.background_load() == 2

    def test_scheduled_load_removes_at_until(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        host = grid.clusters["utk"][0]
        ScheduledLoad(host=host, at=5.0, nprocs=1, until=20.0).install(sim)
        sim.run(until=10.0)
        assert host.background_load() == 1
        sim.run(until=25.0)
        assert host.background_load() == 0

    def test_scheduled_load_bad_window_rejected(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        with pytest.raises(ValueError):
            ScheduledLoad(host=grid.clusters["utk"][0], at=10.0,
                          until=5.0).install(sim)

    def test_trace_load_levels(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        host = grid.clusters["utk"][1]
        TraceLoad(host, [(0.0, 1), (10.0, 3), (20.0, 0)]).install(sim)
        sim.run(until=5.0)
        assert host.background_load() == 1
        sim.run(until=15.0)
        assert host.background_load() == 3
        sim.run(until=25.0)
        assert host.background_load() == 0

    def test_trace_must_be_sorted(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        with pytest.raises(ValueError):
            TraceLoad(grid.clusters["utk"][0], [(10.0, 1), (5.0, 0)])

    def test_random_load_generator_toggles(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        rng = RngRegistry(seed=7).stream("load")
        gen = RandomLoadGenerator(grid.clusters["uiuc"].hosts, rng,
                                  mean_idle=10.0, mean_busy=10.0)
        gen.install(sim)
        sim.run(until=200.0)
        # Over 200 s with 10 s mean periods, every host must have seen
        # load at least once; statistically certain with this seed.
        total = sum(h.background_load() for h in grid.clusters["uiuc"])
        assert total >= 0  # sanity: no crash, levels consistent
        for h in grid.clusters["uiuc"]:
            assert h.background_load() in (0, 1)

    def test_random_load_generator_validates_periods(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        rng = RngRegistry(seed=1).stream("x")
        with pytest.raises(ValueError):
            RandomLoadGenerator(grid.clusters["utk"].hosts, rng,
                                mean_idle=0.0)


class TestRng:
    def test_streams_are_deterministic(self):
        a = RngRegistry(seed=42).stream("nws").random(5)
        b = RngRegistry(seed=42).stream("nws").random(5)
        assert list(a) == list(b)

    def test_streams_are_independent_of_creation_order(self):
        reg1 = RngRegistry(seed=42)
        reg1.stream("a")
        x = reg1.stream("b").random(3)
        reg2 = RngRegistry(seed=42)
        y = reg2.stream("b").random(3)
        assert list(x) == list(y)

    def test_different_names_differ(self):
        reg = RngRegistry(seed=42)
        assert list(reg.stream("a").random(3)) != list(reg.stream("b").random(3))
