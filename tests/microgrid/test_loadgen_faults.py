"""Load generators racing host crashes.

``Host.fail()`` drops every task, including injected background load —
the generators' recorded handles go stale.  Before the fix a removal
armed for after the crash raised ``ValueError("unknown background load
handle")`` out of a kernel callback and aborted the entire simulation;
the soak harness's fault x burst lanes hit this immediately.
"""

from repro.microgrid.failures import ScheduledFailure
from repro.microgrid.host import Architecture, Host
from repro.microgrid.loadgen import (RandomLoadGenerator, ScheduledLoad,
                                     TraceLoad)
from repro.sim.kernel import Simulator

import numpy as np

_ARCH = Architecture(name="test", mflops=100.0)


def _host(sim, name="h.n0"):
    return Host(sim, name, _ARCH)


class TestScheduledLoadVsCrash:
    def test_crash_between_inject_and_remove_does_not_abort(self):
        sim = Simulator()
        host = _host(sim)
        ScheduledLoad(host=host, at=10.0, nprocs=2, until=50.0).install(sim)
        ScheduledFailure(host=host, at=20.0, recover_at=30.0).install(sim)
        sim.run(until=100.0)  # pre-fix: ValueError out of the callback
        assert host.alive
        assert host.background_load() == 0

    def test_injection_on_a_dead_host_is_skipped(self):
        sim = Simulator()
        host = _host(sim)
        ScheduledFailure(host=host, at=5.0, recover_at=20.0).install(sim)
        ScheduledLoad(host=host, at=10.0, nprocs=3, until=50.0).install(sim)
        sim.run(until=15.0)
        assert host.background_load() == 0  # nothing lands on a corpse
        sim.run(until=100.0)
        assert host.background_load() == 0

    def test_crash_then_recover_then_new_injection_still_removes(self):
        sim = Simulator()
        host = _host(sim)
        ScheduledFailure(host=host, at=5.0, recover_at=8.0).install(sim)
        ScheduledLoad(host=host, at=10.0, nprocs=2, until=20.0).install(sim)
        sim.run(until=15.0)
        assert host.background_load() == 2
        sim.run(until=100.0)
        assert host.background_load() == 0

    def test_undisturbed_path_unchanged(self):
        sim = Simulator()
        host = _host(sim)
        ScheduledLoad(host=host, at=10.0, nprocs=2, until=50.0).install(sim)
        sim.run(until=20.0)
        assert host.background_load() == 2
        sim.run(until=60.0)
        assert host.background_load() == 0


class TestTraceLoadVsCrash:
    def test_crash_resets_level_without_abort(self):
        sim = Simulator()
        host = _host(sim)
        TraceLoad(host, [(10.0, 3), (40.0, 1), (60.0, 0)]).install(sim)
        ScheduledFailure(host=host, at=20.0, recover_at=30.0).install(sim)
        sim.run(until=45.0)  # pre-fix: removing 2 stale handles aborted
        assert host.background_load() == 1
        sim.run(until=100.0)
        assert host.background_load() == 0

    def test_level_changes_on_a_dead_host_are_skipped(self):
        sim = Simulator()
        host = _host(sim)
        TraceLoad(host, [(10.0, 2)]).install(sim)
        ScheduledFailure(host=host, at=5.0, recover_at=20.0).install(sim)
        sim.run(until=100.0)
        assert host.background_load() == 0


class TestRandomLoadGeneratorVsCrash:
    def test_survives_crashes_mid_busy_period(self):
        sim = Simulator()
        host = _host(sim)
        gen = RandomLoadGenerator([host], np.random.default_rng(0),
                                  mean_idle=10.0, mean_busy=10.0, nprocs=2)
        gen.install(sim)
        for at in (7.0, 23.0, 41.0, 59.0):
            ScheduledFailure(host=host, at=at, recover_at=at + 5.0
                             ).install(sim)
        sim.run(until=200.0)  # pre-fix: first removal after a crash aborted
        assert host.alive
