"""Stateful property test for the processor-sharing host.

Drives a host through arbitrary interleavings of task submission and
background-load changes, then checks the conservation laws that must
hold for any interleaving: all submitted work completes, total Mflop
delivered equals Mflop submitted, and no task ever finishes faster than
running alone at full speed would allow.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.sim import Simulator
from repro.microgrid import Architecture, Host

SPEED = 100.0


class HostMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.host = Host(self.sim, "h", Architecture(name="a", mflops=SPEED),
                         cores=2)
        self.submitted = []  # (mflop, submit_time, event)
        self.load_handles = []

    @rule(mflop=st.floats(min_value=1.0, max_value=500.0),
          advance=st.floats(min_value=0.0, max_value=5.0))
    def submit_task(self, mflop, advance):
        self.sim.run(until=self.sim.now + advance)
        ev = self.host.compute(mflop)
        self.submitted.append((mflop, self.sim.now, ev))

    @rule(n=st.integers(min_value=1, max_value=3),
          advance=st.floats(min_value=0.0, max_value=5.0))
    def add_load(self, n, advance):
        self.sim.run(until=self.sim.now + advance)
        self.load_handles.extend(self.host.add_background_load(n))

    @rule(advance=st.floats(min_value=0.0, max_value=5.0))
    def remove_load(self, advance):
        if not self.load_handles:
            return
        self.sim.run(until=self.sim.now + advance)
        handle = self.load_handles.pop()
        self.host.remove_background_load([handle])

    @invariant()
    def no_task_beats_solo_speed(self):
        for mflop, t0, ev in self.submitted:
            if ev.triggered and ev.ok:
                assert ev.value >= mflop / SPEED - 1e-6

    def teardown(self):
        # Drain: remove all load so every task can finish, then check
        # conservation.
        if not hasattr(self, "sim"):
            return
        if self.load_handles:
            self.host.remove_background_load(self.load_handles)
            self.load_handles = []
        self.sim.run(until=self.sim.now + 1e7)
        total = 0.0
        for mflop, t0, ev in self.submitted:
            assert ev.triggered and ev.ok, "task never completed"
            total += mflop
        assert self.host.mflop_done == pytest.approx(total, rel=1e-6,
                                                     abs=1e-6)


TestHostStateful = HostMachine.TestCase
TestHostStateful.settings = settings(max_examples=25,
                                     stateful_step_count=20,
                                     deadline=None)
