"""Tests for time-dilated MicroGrid emulation."""

import pytest

from repro.sim import Simulator
from repro.microgrid import (
    VirtualClock,
    dilated_grid,
    fig3_testbed,
    fig4_testbed,
)


class TestVirtualClock:
    def test_roundtrip(self):
        clock = VirtualClock(dilation=4.0)
        assert clock.to_virtual(clock.to_emulation(10.0)) == pytest.approx(10.0)
        assert clock.to_emulation(10.0) == pytest.approx(40.0)

    def test_identity(self):
        clock = VirtualClock(dilation=1.0)
        assert clock.to_virtual(7.0) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualClock(dilation=0.0)


class TestDilatedGrid:
    def test_host_speeds_scaled(self):
        sim = Simulator()
        direct = fig3_testbed(Simulator())
        emulated = dilated_grid(fig3_testbed, sim, dilation=4.0)
        for d_host, e_host in zip(direct.all_hosts(), emulated.all_hosts()):
            assert e_host.arch.mflops == pytest.approx(
                d_host.arch.mflops / 4.0)
            assert e_host.disk_read_bw == pytest.approx(
                d_host.disk_read_bw / 4.0)

    def test_links_scaled(self):
        sim = Simulator()
        direct = fig3_testbed(Simulator())
        emulated = dilated_grid(fig3_testbed, sim, dilation=4.0)
        d_bw = direct.topology.path_bottleneck_bw("utk.n0", "uiuc.n0")
        e_bw = emulated.topology.path_bottleneck_bw("utk.n0", "uiuc.n0")
        assert e_bw == pytest.approx(d_bw / 4.0)
        d_lat = direct.topology.path_latency("utk.n0", "uiuc.n0")
        e_lat = emulated.topology.path_latency("utk.n0", "uiuc.n0")
        assert e_lat == pytest.approx(d_lat * 4.0)

    def test_compute_rescales_exactly(self):
        """Work on the dilated grid takes dilation x as long, so
        rescaled results coincide with the direct run."""
        dilation = 3.0
        sim_d = Simulator()
        direct = fig3_testbed(sim_d)
        ev_d = direct.clusters["utk"][0].compute(1000.0)
        sim_d.run()

        sim_e = Simulator()
        emulated = dilated_grid(fig3_testbed, sim_e, dilation)
        ev_e = emulated.clusters["utk"][0].compute(1000.0)
        sim_e.run()
        clock = VirtualClock(dilation)
        assert clock.to_virtual(ev_e.value) == pytest.approx(ev_d.value)

    def test_transfer_rescales_exactly(self):
        dilation = 5.0
        sim_d = Simulator()
        direct = fig4_testbed(sim_d)
        ev_d = direct.topology.transfer("utk.n0", "uiuc.n0", 10e6)
        sim_d.run()

        sim_e = Simulator()
        emulated = dilated_grid(fig4_testbed, sim_e, dilation)
        ev_e = emulated.topology.transfer("utk.n0", "uiuc.n0", 10e6)
        sim_e.run()
        clock = VirtualClock(dilation)
        assert clock.to_virtual(ev_e.value) == pytest.approx(ev_d.value,
                                                             rel=1e-9)

    def test_cluster_arch_updated_for_gis(self):
        """GIS registration after dilation must see the scaled rates."""
        from repro.gis import GridInformationService
        sim = Simulator()
        emulated = dilated_grid(fig3_testbed, sim, dilation=2.0)
        gis = GridInformationService()
        gis.register_grid(emulated)
        assert gis.lookup("utk.n0").mflops == pytest.approx(373.2 / 2.0,
                                                            rel=1e-3)
