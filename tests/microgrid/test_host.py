"""Tests for the processor-sharing host model."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.microgrid import Architecture, CacheLevel, Host


def make_host(sim, mflops=100.0, cores=1):
    arch = Architecture(name="test", mflops=mflops)
    return Host(sim, "h0", arch, cores=cores)


def test_single_task_runs_at_full_speed():
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    ev = host.compute(500.0)  # 500 Mflop at 100 Mflop/s -> 5 s
    sim.run()
    assert ev.triggered
    assert ev.value == pytest.approx(5.0)
    assert sim.now == pytest.approx(5.0)


def test_two_tasks_share_one_core():
    sim = Simulator()
    host = make_host(sim, mflops=100.0, cores=1)
    a = host.compute(100.0)
    b = host.compute(100.0)
    sim.run()
    # Equal tasks sharing one core both finish at 2x the solo time.
    assert a.value == pytest.approx(2.0)
    assert b.value == pytest.approx(2.0)


def test_two_tasks_on_two_cores_dont_interfere():
    sim = Simulator()
    host = make_host(sim, mflops=100.0, cores=2)
    a = host.compute(100.0)
    b = host.compute(100.0)
    sim.run()
    assert a.value == pytest.approx(1.0)
    assert b.value == pytest.approx(1.0)


def test_share_is_capped_at_one_core():
    """One task on a dual-core host must not run at 2x speed."""
    sim = Simulator()
    host = make_host(sim, mflops=100.0, cores=2)
    ev = host.compute(100.0)
    sim.run()
    assert ev.value == pytest.approx(1.0)


def test_staggered_arrival_slows_first_task():
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    done = {}

    def submit_b():
        ev = host.compute(50.0)
        ev.add_callback(lambda e: done.setdefault("b", sim.now))

    a = host.compute(100.0)
    a.add_callback(lambda e: done.setdefault("a", sim.now))
    sim.call_after(0.5, submit_b)
    sim.run()
    # a runs alone for 0.5 s (50 Mflop done), then shares: both have
    # 50 Mflop left at 50 Mflop/s each -> both finish at t=1.5.
    assert done["a"] == pytest.approx(1.5)
    assert done["b"] == pytest.approx(1.5)


def test_background_load_halves_rate():
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    host.add_background_load(1)
    ev = host.compute(100.0)
    sim.run(until=100.0)
    assert ev.value == pytest.approx(2.0)


def test_background_load_injection_mid_task():
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    ev = host.compute(100.0)  # alone: would end at t=1
    sim.call_after(0.5, lambda: host.add_background_load(1))
    sim.run(until=100.0)
    # 50 Mflop done by 0.5, then 50 Mflop/s -> one more second.
    assert ev.value == pytest.approx(1.5)


def test_background_load_removal_restores_rate():
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    handles = host.add_background_load(1)
    ev = host.compute(100.0)
    sim.call_after(1.0, lambda: host.remove_background_load(handles))
    sim.run(until=100.0)
    # 50 Mflop at half speed in [0,1], then full speed: 0.5 s more.
    assert ev.value == pytest.approx(1.5)


def test_remove_unknown_load_handle_rejected():
    sim = Simulator()
    host = make_host(sim)
    with pytest.raises(ValueError):
        host.remove_background_load([object()])


def test_availability_reflects_contention():
    sim = Simulator()
    host = make_host(sim, cores=1)
    assert host.availability() == pytest.approx(1.0)
    host.add_background_load(1)
    assert host.availability() == pytest.approx(0.5)
    host.add_background_load(2)
    assert host.availability() == pytest.approx(0.25)


def test_availability_multicore():
    sim = Simulator()
    host = make_host(sim, cores=2)
    host.add_background_load(1)
    assert host.availability() == pytest.approx(1.0)
    host.add_background_load(2)
    assert host.availability() == pytest.approx(0.5)


def test_estimate_seconds_matches_actual_when_static():
    sim = Simulator()
    host = make_host(sim, mflops=250.0)
    host.add_background_load(1)
    predicted = host.estimate_seconds(1000.0)
    ev = host.compute(1000.0)
    sim.run(until=1e6)
    assert ev.value == pytest.approx(predicted)


def test_zero_work_completes_immediately():
    sim = Simulator()
    host = make_host(sim)
    ev = host.compute(0.0)
    sim.run()
    assert ev.value == pytest.approx(0.0)
    assert sim.now == 0.0


def test_negative_work_rejected():
    sim = Simulator()
    host = make_host(sim)
    with pytest.raises(ValueError):
        host.compute(-1.0)


def test_mflop_accounting():
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    host.compute(300.0)
    host.compute(200.0)
    sim.run()
    assert host.mflop_done == pytest.approx(500.0)


def test_bad_architecture_rejected():
    with pytest.raises(ValueError):
        Architecture(name="bad", mflops=0.0)
    with pytest.raises(ValueError):
        CacheLevel(size=0)
    with pytest.raises(ValueError):
        CacheLevel(size=1024, miss_penalty=-1.0)


def test_host_needs_a_core():
    sim = Simulator()
    with pytest.raises(ValueError):
        Host(sim, "h", Architecture(name="a", mflops=1.0), cores=0)


@settings(max_examples=30, deadline=None)
@given(
    works=st.lists(st.floats(min_value=1.0, max_value=1e4),
                   min_size=1, max_size=8),
    cores=st.integers(min_value=1, max_value=4),
)
def test_property_total_time_conserves_work(works, cores):
    """Processor sharing conserves work: total Mflop delivered over the
    run equals the Mflop submitted, and the makespan is bounded by the
    serial and ideally-parallel extremes."""
    sim = Simulator()
    host = make_host(sim, mflops=100.0, cores=cores)
    events = [host.compute(w) for w in works]
    sim.run()
    assert all(ev.triggered for ev in events)
    assert host.mflop_done == pytest.approx(sum(works), rel=1e-6)
    lower = max(works) / 100.0  # no task can beat solo speed
    upper = sum(works) / 100.0 + 1e-9  # can't be slower than serial on 1 core
    assert sim.now >= lower - 1e-9
    assert sim.now <= upper * (1.0 if cores == 1 else 1.0) + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    works=st.lists(st.floats(min_value=1.0, max_value=1e3),
                   min_size=2, max_size=6))
def test_property_equal_tasks_finish_together(works):
    """Identical tasks submitted together must finish simultaneously."""
    sim = Simulator()
    host = make_host(sim, mflops=50.0)
    size = works[0]
    events = [host.compute(size) for _ in works]
    sim.run()
    times = {round(ev.value, 6) for ev in events}
    assert len(times) == 1


@settings(max_examples=25, deadline=None)
@given(
    first=st.floats(min_value=10.0, max_value=500.0),
    second=st.floats(min_value=10.0, max_value=500.0),
)
def test_property_smaller_task_never_finishes_later(first, second):
    """Under PS with simultaneous arrival, ordering by size is preserved."""
    sim = Simulator()
    host = make_host(sim, mflops=100.0)
    a = host.compute(first)
    b = host.compute(second)
    sim.run()
    if first < second:
        assert a.value <= b.value + 1e-9
    elif second < first:
        assert b.value <= a.value + 1e-9
