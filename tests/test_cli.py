"""Tests for the command-line interface."""

import json
import os

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig3_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.command == "fig3"
        assert "6000" in args.sizes

    def test_fig4_policy_choices(self):
        args = build_parser().parse_args(["fig4", "--policy", "single"])
        assert args.policy == "single"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--policy", "bogus"])

    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_experiments_accept_trace_option(self):
        for command in ("fig3", "fig4", "eman", "opportunistic"):
            args = build_parser().parse_args([command, "--trace", "t.json"])
            assert args.trace == "t.json"

    def test_every_experiment_accepts_seed(self):
        # the repo-wide convention: every experiment subcommand takes
        # --seed (default 0)
        for argv in (["fig3"], ["fig4"], ["eman"], ["opportunistic"],
                     ["faults", "run"], ["metasched", "run"]):
            args = build_parser().parse_args(argv)
            assert args.seed == 0, argv
            args = build_parser().parse_args(argv + ["--seed", "7"])
            assert args.seed == 7, argv

    def test_trace_group_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_metasched_group_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metasched"])


class TestCommands:
    def test_fig3_small(self, capsys):
        rc = main(["fig3", "--sizes", "4000", "--no-decisions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "no-reschedule" in out

    def test_fig3_bad_sizes(self, capsys):
        assert main(["fig3", "--sizes", "abc"]) == 2
        assert main(["fig3", "--sizes", ""]) == 2

    def test_fig4_none_policy(self, capsys):
        rc = main(["fig4", "--policy", "none", "--iterations", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "policy: none" in out

    def test_opportunistic_disabled(self, capsys):
        rc = main(["opportunistic", "--disable"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "daemon off" in out

    def test_describe(self, tmp_path, capsys):
        dml = tmp_path / "grid.dml"
        dml.write_text("arch a mflops=100\n"
                       "cluster c arch=a hosts=3 nic=100Mb lat=0.1ms\n")
        rc = main(["describe", str(dml)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 hosts" in out
        assert "c" in out

    def test_describe_missing_file(self, capsys):
        assert main(["describe", "/nonexistent/grid.dml"]) == 2

    def test_bench_json(self, capsys):
        rc = main(["bench", "--transfers", "60", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["allocator"] == "incremental"
        assert payload["transfers_completed"] == 60
        assert payload["events_processed"] > 0

    def test_fig4_json(self, capsys):
        rc = main(["fig4", "--policy", "none", "--iterations", "10",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["policy"] == "none"
        assert payload["iterations"] == 10
        assert payload["stats"]["events_processed"] > 0

    def test_uncaught_experiment_error_exits_one(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(**kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(cli, "run_fig4", boom)
        assert main(["fig4", "--iterations", "5"]) == 1
        err = capsys.readouterr().err
        assert "synthetic failure" in err


class TestMetaschedCommands:
    ARGS = ["metasched", "run", "--users", "3", "--arrival-rate", "0.01",
            "--duration", "900", "--seed", "3"]

    def test_run_tables(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "metasched:" in out
        assert "0 reservation conflicts" in out
        assert "stream summary" in out

    def test_run_json_same_seed_byte_identical(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema_version"] == 1
        assert payload["conflicts"] == []
        assert payload["summary"]["submitted"] == len(payload["jobs"])
        assert payload["counters"]["meta_submitted"] == len(payload["jobs"])

    def test_run_out_and_report(self, tmp_path, capsys):
        out_path = tmp_path / "stream.json"
        assert main(self.ARGS + ["--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["metasched", "report", str(out_path)]) == 0
        assert "stream summary" in capsys.readouterr().out

    def test_run_trace_carries_metasched_lane(self, tmp_path):
        path = tmp_path / "m.trace.json"
        assert main(self.ARGS + ["--trace", str(path)]) == 0
        obj = json.loads(path.read_text())
        cats = {e.get("cat") for e in obj["traceEvents"]}
        assert "metasched" in cats

    def test_run_bad_usage(self, capsys):
        assert main(["metasched", "run", "--users", "0"]) == 2
        assert main(["metasched", "run", "--arrival-rate", "-1"]) == 2

    def test_report_conflict_exits_one(self, tmp_path, capsys):
        doctored = {
            "schema_version": 1,
            "params": {}, "jobs": [], "counters":
                {"meta_reservations": 0},
            "conflicts": ["h: claims overlap"],
            "summary": {"submitted": 0, "completed": 0, "rejected": 0,
                        "conflicts": 1, "makespan_seconds": 0.0,
                        "throughput_jobs_per_hour": 0.0,
                        "mean_queue_wait_seconds": 0.0,
                        "backfilled": 0, "failed": 0},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doctored))
        assert main(["metasched", "report", str(path)]) == 1


class TestSoakCommands:
    ARGS = ["soak", "run", "--scenarios", "3", "--seed", "7"]
    SOAK_DIR = os.path.join(os.path.dirname(__file__), "soak")
    FIXTURE = os.path.join(SOAK_DIR, "fixtures", "known_violation.json")

    def test_run_json_same_seed_byte_identical(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema_version"] == 1
        assert payload["summary"]["violations"] == 0
        assert payload["summary"]["scenarios"] == 3

    def test_run_out_and_report(self, tmp_path, capsys):
        out_path = tmp_path / "soak.json"
        assert main(self.ARGS + ["--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["soak", "report", str(out_path)]) == 0
        assert "soak: 3 scenarios" in capsys.readouterr().out

    def test_replay_clean_reproducer(self, capsys):
        rc = main(["soak", "replay",
                   os.path.join(self.SOAK_DIR, "reproducers",
                                "resources-dead-waiters.json")])
        assert rc == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_replay_violating_fixture_shrinks(self, tmp_path, capsys):
        shrunk = tmp_path / "minimal.json"
        assert main(["soak", "replay", self.FIXTURE,
                     "--shrink", str(shrunk)]) == 1
        assert "marker-canary" in capsys.readouterr().out
        # the emitted reproducer must itself replay to the violation
        assert main(["soak", "replay", str(shrunk)]) == 1

    def test_bad_usage(self, tmp_path, capsys):
        assert main(["soak", "run", "--scenarios", "0"]) == 2
        assert main(["soak", "run", "--minutes", "-1"]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["soak", "replay", str(garbage)]) == 2


class TestTraceCommands:
    def _export(self, tmp_path, name, iterations=10):
        path = tmp_path / name
        rc = main(["fig4", "--policy", "none",
                   "--iterations", str(iterations), "--trace", str(path)])
        assert rc == 0
        return path

    def test_trace_export_and_validate(self, tmp_path, capsys):
        path = self._export(tmp_path, "t.json")
        capsys.readouterr()
        assert main(["trace", "validate", str(path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
        assert main(["trace", "validate", str(bad)]) == 1

    def test_same_seed_diff_is_clean(self, tmp_path, capsys):
        a = self._export(tmp_path, "a.json")
        b = self._export(tmp_path, "b.json")
        assert a.read_bytes() == b.read_bytes()
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_traces_exit_one(self, tmp_path, capsys):
        a = self._export(tmp_path, "a.json", iterations=10)
        b = self._export(tmp_path, "b.json", iterations=12)
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "diverge" in capsys.readouterr().out

    def test_summary(self, tmp_path, capsys):
        path = self._export(tmp_path, "t.json")
        capsys.readouterr()
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
