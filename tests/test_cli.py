"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig3_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.command == "fig3"
        assert "6000" in args.sizes

    def test_fig4_policy_choices(self):
        args = build_parser().parse_args(["fig4", "--policy", "single"])
        assert args.policy == "single"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--policy", "bogus"])


class TestCommands:
    def test_fig3_small(self, capsys):
        rc = main(["fig3", "--sizes", "4000", "--no-decisions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "no-reschedule" in out

    def test_fig3_bad_sizes(self, capsys):
        assert main(["fig3", "--sizes", "abc"]) == 2
        assert main(["fig3", "--sizes", ""]) == 2

    def test_fig4_none_policy(self, capsys):
        rc = main(["fig4", "--policy", "none", "--iterations", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "policy: none" in out

    def test_opportunistic_disabled(self, capsys):
        rc = main(["opportunistic", "--disable"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "daemon off" in out

    def test_describe(self, tmp_path, capsys):
        dml = tmp_path / "grid.dml"
        dml.write_text("arch a mflops=100\n"
                       "cluster c arch=a hosts=3 nic=100Mb lat=0.1ms\n")
        rc = main(["describe", str(dml)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 hosts" in out
        assert "c" in out

    def test_describe_missing_file(self, capsys):
        assert main(["describe", "/nonexistent/grid.dml"]) == 2
